package main

import (
	"fmt"
	"time"

	"github.com/alvc/alvc"
	"github.com/alvc/alvc/internal/topology"
)

// resilienceBenchReport is the machine-readable result of one
// resilience bench run (BENCH_resilience.json): the standby-swap
// contract (zero shortest-path computations at recovery), the
// cold-repath vs standby-swap recovery latency at fleet scale, and the
// rack-event batch semantics.
type resilienceBenchReport struct {
	Name     string          `json:"name"`
	Contract contractSample  `json:"contract"`
	Fleet    fleetComparison `json:"fleet"`
	Rack     rackSample      `json:"rack"`
}

// contractSample is the single-chain contract check: the same transit
// failure recovered by standby swap (protected chain) and by cold
// re-path (identical unprotected chain). The swap must run zero
// shortest-path computations.
type contractSample struct {
	Action               string  `json:"action"`
	PathComputations     int     `json:"path_computations"`
	SwapMs               float64 `json:"swap_ms"`
	ColdMs               float64 `json:"cold_ms"`
	ColdPathComputations int     `json:"cold_path_computations"`
	// Speedup is the cold single-chain recovery latency over the swap
	// latency — the per-chain win of proactive standby paths.
	Speedup float64 `json:"speedup"`
}

// fleetComparison pits a standby-protected fleet (with the background
// optimizer attached) against an identical unprotected one under the
// same ToR failure. The contract is anchored on control-plane churn
// and protection health, not wall time: the protected fleet recovers
// with no inline path searches and no more flow-rule churn per chain
// than the cold fleet, and the protection gap the repair opens closes
// after one optimizer drain.
type fleetComparison struct {
	Chains  int         `json:"chains"`
	Standby fleetSample `json:"standby"`
	Cold    fleetSample `json:"cold"`
	// Speedup is cold recovery latency over standby recovery latency
	// (reported, not gated — wall time is too noisy to contract on).
	Speedup float64 `json:"speedup"`
}

// fleetSample is one fleet's measurement.
type fleetSample struct {
	Affected         int     `json:"affected"`
	RepairMs         float64 `json:"repair_ms"`
	PathComputations int     `json:"path_computations"`
	// YenRuns counts inline standby replans during recovery; with the
	// optimizer attached the contract is 0 (replanning is deferred).
	YenRuns int            `json:"yen_runs"`
	Actions map[string]int `json:"actions"`
	// RulesInstalled is the flow-rule churn of the recovery: rules
	// installed while repairing, normalized per affected chain in
	// RuleChurnPerChain.
	RulesInstalled    int     `json:"rules_installed"`
	RuleChurnPerChain float64 `json:"rule_churn_per_chain"`
	// ProtectionGap counts active chains left without a standby right
	// after the repair; ProtectionGapAfterDrain recounts after the
	// victim recovers and one optimizer drain runs (contract: 0 for the
	// protected fleet).
	ProtectionGap           int `json:"protection_gap"`
	ProtectionGapAfterDrain int `json:"protection_gap_after_drain"`
	FailedRepairs           int `json:"failed_repairs"`
}

// rackSample is the batch (ToR + its PMs) reconciliation measurement.
type rackSample struct {
	Nodes      int            `json:"nodes"`
	Reports    int            `json:"reports"`
	Duplicates int            `json:"duplicates"`
	BatchMs    float64        `json:"batch_ms"`
	Actions    map[string]int `json:"actions"`
}

// resilienceTopology is wide enough for `chains` disjoint ALs with
// every PM dual-homed, so a single ToR failure always leaves alternate
// routes for both the standby planner and the cold re-path.
func resilienceTopology(chains int) alvc.TopologyConfig {
	cfg := alvc.DefaultTopology()
	cfg.Racks = 4
	cfg.PMsPerRack = 2
	cfg.VMsPerPM = 2
	cfg.OPSCount = chains + 8
	cfg.ToRUplinks = cfg.OPSCount
	cfg.OPSChords = 0
	cfg.DualHomeFrac = 1.0
	cfg.Services = []string{"web"}
	cfg.PMCapacity = topology.Resources{CPUCores: 1 << 20, MemoryGB: 1 << 20, StorageGB: 1 << 20}
	return cfg
}

func provisionFleet(arch *alvc.Architecture, chains int) error {
	specs := make([]alvc.Spec, chains)
	for i := range specs {
		spec, err := alvc.LinearChain(fmt.Sprintf("bench-%d", i), fmt.Sprintf("t-%d", i),
			"web", 1, 1<<20, "firewall", "nat")
		if err != nil {
			return err
		}
		specs[i] = spec
	}
	for _, res := range arch.DeployBatch(specs) {
		if res.Err != nil {
			return fmt.Errorf("provision %d: %w", res.Index, res.Err)
		}
	}
	return nil
}

// swapVictim picks a ToR on the chain's primary path that its standby
// avoids — the node whose failure must trigger a pure swap.
func swapVictim(arch *alvc.Architecture, dep *alvc.Deployment) alvc.NodeID {
	if dep.Standby == nil {
		return 0
	}
	onStandby := make(map[alvc.NodeID]bool)
	for _, n := range dep.Standby.Path {
		onStandby[n] = true
	}
	hosts := make(map[alvc.NodeID]bool)
	for _, h := range dep.Placement.Hosts {
		hosts[h] = true
	}
	for _, n := range dep.Path {
		node := arch.Topology().Node(n)
		if node == nil || node.Kind != topology.KindToR {
			continue
		}
		if !onStandby[n] && !hosts[n] && !dep.Slice.Contains(n) {
			return n
		}
	}
	return 0
}

// protectionGap counts active chains currently without a standby —
// the fleet's exposure to a second failure.
func protectionGap(arch *alvc.Architecture) int {
	gap := 0
	for _, dep := range arch.Deployments() {
		if dep.State.String() == "active" && dep.Standby == nil {
			gap++
		}
	}
	return gap
}

func runResilienceBench(chains int) (*resilienceBenchReport, error) {
	if chains < 2 {
		return nil, fmt.Errorf("resilience bench: need at least 2 chains, got %d", chains)
	}
	report := &resilienceBenchReport{Name: "resilience"}

	// 1. Contract: one protected chain, one transit ToR failure, zero
	// shortest-path computations during recovery.
	arch, err := alvc.New(resilienceTopology(chains))
	if err != nil {
		return nil, err
	}
	if err := provisionFleet(arch, 1); err != nil {
		return nil, err
	}
	dep := arch.Deployments()[0]
	victim := swapVictim(arch, dep)
	if victim == 0 {
		return nil, fmt.Errorf("resilience bench: no swap victim on chain 1 (standby=%v)", dep.Standby)
	}
	before := arch.Orchestrator().Controller().PathComputations()
	start := time.Now()
	reports, err := arch.FailNode(victim)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("contract FailNode: %w", err)
	}
	report.Contract.PathComputations = arch.Orchestrator().Controller().PathComputations() - before
	report.Contract.SwapMs = float64(elapsed) / float64(time.Millisecond)
	for _, rep := range reports {
		if rep.ID == dep.ID {
			report.Contract.Action = string(rep.Action)
		}
	}

	// The same failure on an identical but unprotected chain: cold
	// re-path latency is the baseline the swap is measured against.
	coldArch, err := alvc.New(resilienceTopology(chains), alvc.WithStandbyK(-1))
	if err != nil {
		return nil, err
	}
	if err := provisionFleet(coldArch, 1); err != nil {
		return nil, err
	}
	before = coldArch.Orchestrator().Controller().PathComputations()
	start = time.Now()
	if _, err := coldArch.FailNode(victim); err != nil {
		return nil, fmt.Errorf("contract cold FailNode: %w", err)
	}
	report.Contract.ColdMs = float64(time.Since(start)) / float64(time.Millisecond)
	report.Contract.ColdPathComputations = coldArch.Orchestrator().Controller().PathComputations() - before
	if report.Contract.SwapMs > 0 {
		report.Contract.Speedup = report.Contract.ColdMs / report.Contract.SwapMs
	}

	// 2. Fleet: identical topologies and fleets, one protected (with
	// the background optimizer deferring replans) and one not, under
	// the same deterministic ToR failure. Measured on control-plane
	// churn and protection health.
	for _, mode := range []struct {
		name string
		opts []alvc.Option
		out  *fleetSample
	}{
		{"standby", []alvc.Option{alvc.WithOptimizer(alvc.OptimizerOptions{})}, &report.Fleet.Standby},
		{"cold", []alvc.Option{alvc.WithStandbyK(-1)}, &report.Fleet.Cold},
	} {
		arch, err := alvc.New(resilienceTopology(chains), mode.opts...)
		if err != nil {
			return nil, err
		}
		if err := provisionFleet(arch, chains); err != nil {
			return nil, err
		}
		first := arch.Deployments()[0]
		// Deterministic generation: the same victim node exists in both
		// fleets. In cold mode there is no standby to avoid, so fall
		// back to any transit ToR on the primary path.
		victim := swapVictim(arch, first)
		if victim == 0 {
			for _, n := range first.Path {
				if node := arch.Topology().Node(n); node != nil && node.Kind == topology.KindToR {
					victim = n
					break
				}
			}
		}
		if victim == 0 {
			return nil, fmt.Errorf("resilience bench: no ToR victim in %s fleet", mode.name)
		}
		ctrl := arch.Orchestrator().Controller()
		compsBefore := ctrl.PathComputations()
		yenBefore := ctrl.YenRuns()
		_, rulesBefore := ctrl.Stats()
		start := time.Now()
		reports, _ := arch.FailNode(victim) // per-chain failures are reported below
		elapsed := time.Since(start)
		_, rulesAfter := ctrl.Stats()
		sample := fleetSample{
			Affected:         len(reports),
			RepairMs:         float64(elapsed) / float64(time.Millisecond),
			PathComputations: ctrl.PathComputations() - compsBefore,
			YenRuns:          ctrl.YenRuns() - yenBefore,
			RulesInstalled:   rulesAfter - rulesBefore,
			Actions:          make(map[string]int),
		}
		for _, rep := range reports {
			sample.Actions[string(rep.Action)]++
			if rep.Action == alvc.RepairAction("failed") {
				sample.FailedRepairs++
			}
		}
		if sample.Affected > 0 {
			sample.RuleChurnPerChain = float64(sample.RulesInstalled) / float64(sample.Affected)
		}
		sample.ProtectionGap = protectionGap(arch)
		// Heal the outage and let the optimizer catch up: the gap the
		// repair opened must close.
		if err := arch.RecoverNode(victim); err != nil {
			return nil, fmt.Errorf("resilience bench: recover %s victim: %w", mode.name, err)
		}
		arch.Optimize()
		sample.ProtectionGapAfterDrain = protectionGap(arch)
		*mode.out = sample
	}
	report.Fleet.Chains = chains
	if report.Fleet.Standby.RepairMs > 0 {
		report.Fleet.Speedup = report.Fleet.Cold.RepairMs / report.Fleet.Standby.RepairMs
	}

	// 3. Rack event: ToR plus its PMs as one batch; every affected
	// chain must be visited exactly once.
	arch, err = alvc.New(resilienceTopology(chains))
	if err != nil {
		return nil, err
	}
	if err := provisionFleet(arch, chains); err != nil {
		return nil, err
	}
	topo := arch.Topology()
	var tor alvc.NodeID
	for _, id := range topo.NodeIDs(topology.KindToR) {
		tor = id
		break
	}
	rack := []alvc.NodeID{tor}
	for _, pm := range topo.NodeIDs(topology.KindPhysicalMachine) {
		for _, pt := range topo.ToRsOfPM(pm) {
			if pt == tor {
				rack = append(rack, pm)
				break
			}
		}
	}
	start = time.Now()
	rackReports, _ := arch.FailBatch(rack, nil) // dead endpoints may legitimately fail chains
	elapsed = time.Since(start)
	report.Rack = rackSample{
		Nodes:   len(rack),
		Reports: len(rackReports),
		BatchMs: float64(elapsed) / float64(time.Millisecond),
		Actions: make(map[string]int),
	}
	seen := make(map[alvc.DeploymentID]bool)
	for _, rep := range rackReports {
		report.Rack.Actions[string(rep.Action)]++
		if seen[rep.ID] {
			report.Rack.Duplicates++
		}
		seen[rep.ID] = true
	}
	return report, nil
}

func printResilienceReport(r *resilienceBenchReport) {
	fmt.Println("resilience: standby-swap vs cold-repath recovery")
	fmt.Printf("  contract: action=%s swap=%.3f ms (%d path computations) vs cold=%.3f ms (%d) -> %.2fx\n",
		r.Contract.Action, r.Contract.SwapMs, r.Contract.PathComputations,
		r.Contract.ColdMs, r.Contract.ColdPathComputations, r.Contract.Speedup)
	for _, s := range []struct {
		name string
		f    fleetSample
	}{{"standby", r.Fleet.Standby}, {"cold", r.Fleet.Cold}} {
		fmt.Printf("  %-7s fleet (%d chains): repair %8.3f ms, %3d affected, %3d path computations, %2d inline replans, %.1f rules/chain, gap %d -> %d after drain, actions %v\n",
			s.name, r.Fleet.Chains, s.f.RepairMs, s.f.Affected, s.f.PathComputations,
			s.f.YenRuns, s.f.RuleChurnPerChain, s.f.ProtectionGap, s.f.ProtectionGapAfterDrain, s.f.Actions)
	}
	fmt.Printf("  speedup: %.2fx\n", r.Fleet.Speedup)
	fmt.Printf("  rack event: %d nodes -> %d reports (%d duplicates) in %.3f ms, actions %v\n",
		r.Rack.Nodes, r.Rack.Reports, r.Rack.Duplicates, r.Rack.BatchMs, r.Rack.Actions)
}

// resilienceViolations counts contract breaches. The contract is
// anchored on control-plane churn and protection health: a swap that
// computed paths (or was not a swap at all), a protected fleet that
// replanned standbys inline or churned more flow rules per chain than
// the cold fleet, a protection gap that one post-recovery drain did
// not close, or a rack batch visiting a chain twice.
func resilienceViolations(r *resilienceBenchReport) int {
	n := 0
	if r.Contract.Action != "swapped" {
		n++
	}
	if r.Contract.PathComputations != 0 {
		n++
	}
	if r.Rack.Duplicates > 0 {
		n += r.Rack.Duplicates
	}
	if r.Fleet.Standby.Actions["swapped"] == 0 {
		n++
	}
	// Deferred replanning: recovery must run zero inline Yen searches,
	// and strictly fewer path computations than the cold fleet pays.
	if r.Fleet.Standby.YenRuns != 0 {
		n++
	}
	if r.Fleet.Standby.PathComputations >= r.Fleet.Cold.PathComputations {
		n++
	}
	// Rule churn: swapping onto precomputed standbys must not install
	// more rules per affected chain than cold repathing.
	if r.Fleet.Standby.RuleChurnPerChain > r.Fleet.Cold.RuleChurnPerChain {
		n++
	}
	// Protection health: the gap the repair opens must close after the
	// outage heals and the optimizer drains.
	if r.Fleet.Standby.ProtectionGapAfterDrain != 0 {
		n++
	}
	if r.Fleet.Standby.FailedRepairs > 0 {
		n++
	}
	return n
}
