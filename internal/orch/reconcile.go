package orch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/resilience"
	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/trace"
)

// RepairAction classifies what the reconciliation engine did to one
// deployment after a failure, from cheapest to most expensive.
type RepairAction string

// Repair actions.
const (
	// ActionSwapped: the failure hit the primary path but the
	// precomputed standby survived — the route swapped to the standby
	// make-before-break with zero shortest-path runs; the VC, slice and
	// every VNF instance were left untouched, and the consumed standby
	// awaits replanning.
	ActionSwapped RepairAction = "swapped"
	// ActionRepathed: the failure hit the primary path and no valid
	// standby existed — the SDN path was recomputed cold and the rules
	// swapped make-before-break; the VC, slice and every VNF instance
	// were left untouched.
	ActionRepathed RepairAction = "repathed"
	// ActionRestandby: the failure consumed only the deployment's
	// standby path; the primary kept carrying traffic and only the
	// standby was replanned.
	ActionRestandby RepairAction = "restandby"
	// ActionReplaced: a failed node hosted VNF instance(s) — only those
	// instances migrated to surviving hosts, then the path was swapped;
	// the VC and slice were left untouched.
	ActionReplaced RepairAction = "replaced"
	// ActionPatched: a failed node was an OPS of the chain's AL — the
	// vertex cover was re-run over the broken portion reusing surviving
	// OPSs (cluster.PatchVC) and the slice membership swapped in place
	// (optical.PatchMembership), keeping the VC ID, slice ID and
	// bandwidth reservation; VNFs moved only if a failed OPS hosted
	// them.
	ActionPatched RepairAction = "patched"
	// ActionRebuilt: differential repair was impossible — the chain was
	// torn down and rebuilt from scratch (the pre-reconciler behavior).
	ActionRebuilt RepairAction = "rebuilt"
	// ActionFailed: no repair succeeded; the deployment's resources
	// were released and it transitioned to StateFailed.
	ActionFailed RepairAction = "failed"
	// ActionSkipped: nothing was done — the deployment was concurrently
	// deleted, already claimed by another exclusive operation, or no
	// longer touched the failed resources.
	ActionSkipped RepairAction = "skipped"
)

// RepairReport is one deployment's reconciliation outcome.
type RepairReport struct {
	ID     DeploymentID
	Action RepairAction
	// Err is set for ActionFailed, for ActionSkipped when the skip was
	// caused by a concurrent exclusive operation, and for
	// ActionRestandby when no new standby could be planned (the chain
	// keeps carrying traffic but is left unprotected).
	Err error
	// TraceID/SpanID identify the repair span recorded for this
	// deployment (empty/0 when tracing is disabled), continuing the
	// trace of the failure report that triggered the reconciliation.
	TraceID string
	SpanID  trace.SpanID
}

// Succeeded reports whether the repair left the deployment active and
// consistent with the new topology.
func (r RepairReport) Succeeded() bool {
	switch r.Action {
	case ActionSwapped, ActionRepathed, ActionRestandby, ActionReplaced, ActionPatched, ActionRebuilt:
		return true
	}
	return false
}

// RepairedIDs filters a report list down to the deployments whose
// repair succeeded, preserving order.
func RepairedIDs(reports []RepairReport) []DeploymentID {
	var out []DeploymentID
	for _, r := range reports {
		if r.Succeeded() {
			out = append(out, r.ID)
		}
	}
	return out
}

// Exclusive operations (upgrade, scale, move, delete) are short; a
// reconciliation that finds a deployment busy retries a few times
// before giving up and reporting the skip as an error.
const (
	busyRetries    = 10
	busyRetryDelay = 10 * time.Millisecond
)

// HandleNodeFailure marks one node as down and reconciles every active
// deployment whose footprint includes it. It is the single-node form of
// HandleFailures.
func (o *Orchestrator) HandleNodeFailure(node topology.NodeID) ([]RepairReport, error) {
	return o.HandleFailuresCtx(context.Background(), []topology.NodeID{node}, nil)
}

// HandleNodeFailureCtx is HandleNodeFailure carrying a request context
// for trace propagation.
func (o *Orchestrator) HandleNodeFailureCtx(ctx context.Context, node topology.NodeID) ([]RepairReport, error) {
	return o.HandleFailuresCtx(ctx, []topology.NodeID{node}, nil)
}

// HandleLinkFailure marks one link as down and reconciles every active
// deployment whose primary or standby path crosses it. It is the
// single-link form of HandleFailures.
func (o *Orchestrator) HandleLinkFailure(link topology.LinkID) ([]RepairReport, error) {
	return o.HandleFailuresCtx(context.Background(), nil, []topology.LinkID{link})
}

// HandleLinkFailureCtx is HandleLinkFailure carrying a request context
// for trace propagation.
func (o *Orchestrator) HandleLinkFailureCtx(ctx context.Context, link topology.LinkID) ([]RepairReport, error) {
	return o.HandleFailuresCtx(ctx, nil, []topology.LinkID{link})
}

// HandleFailures marks every given node and link as down in one
// topology transaction and reconciles each affected active deployment
// exactly once, classifying it against the union of dead resources — a
// rack-level event (a ToR plus all its PMs, or a cable bundle) is one
// reconciliation pass, not one per resource. Affected chains are found
// through the reverse node and link indexes (O(damage), not
// O(deployments)) and repaired concurrently over a bounded worker pool.
// One report per affected deployment is returned in ID order; err
// carries the first failed repair, if any.
//
// Unknown IDs are rejected up front: nothing is marked down and no
// repair runs, so callers can map the error to a 404 without partial
// state.
func (o *Orchestrator) HandleFailures(nodes []topology.NodeID, links []topology.LinkID) ([]RepairReport, error) {
	return o.HandleFailuresCtx(context.Background(), nodes, links)
}

// HandleFailuresCtx is HandleFailures carrying a request context: when
// tracing is enabled and the context holds a span (the HTTP request's
// root span, or a debouncer batch span), every repair records a child
// span in that trace, and the repair-completed events carry the repair
// span's identity across the event mux.
func (o *Orchestrator) HandleFailuresCtx(ctx context.Context, nodes []topology.NodeID, links []topology.LinkID) ([]RepairReport, error) {
	if len(nodes) == 0 && len(links) == 0 {
		return nil, nil
	}
	dead, err := o.markFailuresDown(nodes, links)
	if err != nil {
		return nil, err
	}
	reports := o.reconcileFailures(ctx, dead)
	o.emitRepairEvents(reports, o.failureDomain(dead))
	return reports, firstRepairError(reports)
}

// markFailuresDown is the topology half of HandleFailures: it validates
// every ID, marks the nodes and links down in one write-lock
// transaction, and returns the failure set with its shared-risk groups
// collected. It touches only shared-core state, so under sharding it
// runs exactly once regardless of how many shards reconcile afterwards.
func (o *Orchestrator) markFailuresDown(nodes []topology.NodeID, links []topology.LinkID) (resilience.FailureSet, error) {
	o.topoMu.Lock()
	for _, n := range nodes {
		if o.topo.Node(n) == nil {
			o.topoMu.Unlock()
			return resilience.FailureSet{}, fmt.Errorf("orch: node failure: topology: SetNodeDown: unknown node %d", n)
		}
	}
	for _, l := range links {
		if o.topo.Link(l) == nil {
			o.topoMu.Unlock()
			return resilience.FailureSet{}, fmt.Errorf("orch: link failure: topology: SetLinkDown: unknown link %d", l)
		}
	}
	// Batch liveness mutators: the whole failure set lands as one
	// topology generation bump and one overlay patch per cached
	// snapshot, so a storm of dead links costs O(affected arcs), not
	// O(resources) graph invalidations.
	_ = o.topo.SetNodesDown(nodes, true)
	_ = o.topo.SetLinksDown(links, true)
	// Inside the write lock: a provision acquiring topoMu.RLock after
	// this point must not see the stale live-VM cache. Link failures
	// invalidate it too — a dead PM↔ToR link strands that PM's VMs.
	o.InvalidateVMCache()
	dead := resilience.NewFailureSet(nodes, links)
	// Shared-risk groups of the dead links, collected while the
	// topology is still quiescent: standbys crossing a same-group
	// survivor are suspect and get replanned rather than swapped onto.
	dead.CollectSRLGs(o.topo)
	o.topoMu.Unlock()
	return dead, nil
}

// reconcileFailures is the deployment half of HandleFailures: it finds
// this orchestrator's affected active deployments through the reverse
// indexes and repairs them concurrently over a bounded worker pool.
// Under sharding every shard runs its own pass against the same
// already-marked failure set.
func (o *Orchestrator) reconcileFailures(ctx context.Context, dead resilience.FailureSet) []RepairReport {
	affected := o.affectedBy(dead)
	reports := make([]RepairReport, len(affected))
	tr := o.tracer()
	parent, _ := trace.FromContext(ctx)
	runPool(len(affected), 0, func(i int) {
		// One repair span per deployment wraps the whole busy-retry
		// loop — retries are attempts at the same repair, not separate
		// operations — continuing the caller's trace (the failure
		// report's HTTP span or the debouncer's batch span).
		rctx := ctx
		var sc trace.SpanContext
		var start time.Time
		if tr != nil {
			sc = tr.Start(parent)
			rctx = trace.ContextWith(ctx, sc)
			start = time.Now()
		}
		rep := o.repairAround(rctx, affected[i], dead)
		for attempt := 0; attempt < busyRetries &&
			rep.Action == ActionSkipped && errors.Is(rep.Err, ErrBusy); attempt++ {
			time.Sleep(busyRetryDelay)
			rep = o.repairAround(rctx, affected[i], dead)
		}
		if tr != nil {
			sp := trace.Span{TraceID: sc.TraceID, SpanID: sc.SpanID, Parent: parent.SpanID,
				Name: "repair", Kind: trace.KindRepair, Start: start, End: time.Now(),
				Dep:   int(affected[i]),
				Attrs: []trace.Attr{{Key: "action", Value: string(rep.Action)}}}
			sp.SetError(rep.Err)
			tr.Record(sp)
			rep.TraceID, rep.SpanID = sc.TraceID, sc.SpanID
		}
		reports[i] = rep
	})
	return reports
}

// emitRepairEvents wakes the background optimizer (no locks held):
// every successful repair may have left a consumed standby or a drifted
// placement behind. All events of one HandleFailures batch carry the
// same failure domain, letting the optimizer's storm mode coalesce
// their follow-up work per shared cause instead of per deployment.
func (o *Orchestrator) emitRepairEvents(reports []RepairReport, domain string) {
	for _, rep := range reports {
		if rep.Succeeded() {
			o.emit(Event{Kind: EventRepairCompleted, Deployment: rep.ID, Action: rep.Action,
				Domain: domain, TraceID: rep.TraceID, SpanID: rep.SpanID})
		}
	}
}

// failureDomain names the shared failure domain of one HandleFailures
// batch: the dead links' risk groups when any exist ("srlg:3+7" — the
// physical tray or conduit that snapped), otherwise a unique per-batch
// tag — either way, every repair event of the batch shares it.
func (o *Orchestrator) failureDomain(dead resilience.FailureSet) string {
	if len(dead.SRLGs) > 0 {
		groups := make([]int, 0, len(dead.SRLGs))
		for g := range dead.SRLGs {
			groups = append(groups, g)
		}
		sort.Ints(groups)
		parts := make([]string, len(groups))
		for i, g := range groups {
			parts[i] = strconv.Itoa(g)
		}
		return "srlg:" + strings.Join(parts, "+")
	}
	return "batch:" + strconv.FormatUint(atomic.AddUint64(&o.batchSeq, 1), 10)
}

// firstRepairError folds a report list to the error HandleFailures
// surfaces: the first outright repair failure, or the first deployment
// that stayed busy through every retry (it is still Active with a dead
// resource in its footprint, and the caller must know the
// reconciliation is incomplete).
func firstRepairError(reports []RepairReport) error {
	for _, rep := range reports {
		switch {
		case rep.Action == ActionFailed:
			return fmt.Errorf("orch: repair %d: %w", rep.ID, rep.Err)
		case rep.Action == ActionSkipped && errors.Is(rep.Err, ErrBusy):
			return fmt.Errorf("orch: repair %d: %w", rep.ID, rep.Err)
		}
	}
	return nil
}

// affectedBy returns the active deployments whose footprint intersects
// the failure set, each exactly once, sorted by ID — a union of
// reverse-index lookups, not a scan.
func (o *Orchestrator) affectedBy(dead resilience.FailureSet) []DeploymentID {
	o.mu.Lock()
	defer o.mu.Unlock()
	seen := make(map[DeploymentID]bool)
	var out []DeploymentID
	collect := func(set map[DeploymentID]struct{}) {
		for id := range set {
			if seen[id] {
				continue
			}
			seen[id] = true
			if dep, ok := o.deployments[id]; ok && dep.State == StateActive {
				out = append(out, id)
			}
		}
	}
	for n := range dead.Nodes {
		collect(o.nodeIndex[n])
	}
	for l := range dead.Links {
		collect(o.linkIndex[l])
	}
	// Shared-risk expansion: chains whose footprint crosses a live link
	// in the same risk group as a dead one must be visited too — their
	// standbys may no longer be survivable. When CollectSRLGs has
	// materialized the batch's suspect-link set, probe the reverse index
	// with it — the one topology walk already happened in
	// markFailuresDown, and every shard's pass reuses it. The fallback
	// scans the indexed links (links inside some footprint) probing SRLG
	// membership per link, which keeps it O(footprint), not O(topology);
	// SRLG membership is immutable after build, so reading it here
	// without topoMu is safe.
	switch {
	case dead.SuspectLinks != nil:
		for l := range dead.SuspectLinks {
			if dead.Links[l] {
				continue // dead links were collected above
			}
			collect(o.linkIndex[l])
		}
	case len(dead.SRLGs) > 0:
		for l, set := range o.linkIndex {
			if dead.Links[l] {
				continue
			}
			link := o.topo.Link(l)
			if link != nil && dead.HitsAnySRLG(link.SRLG) {
				collect(set)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// repairAround is the per-deployment reconciler: it classifies how the
// failure set intersects the deployment's footprint, applies the
// cheapest repair that covers the whole damage, and falls back to a
// full rebuild when the differential repair is impossible.
func (o *Orchestrator) repairAround(ctx context.Context, id DeploymentID, dead resilience.FailureSet) RepairReport {
	dep, err := o.beginExclusive(id)
	if err != nil {
		// A concurrent delete/repair/move claimed the deployment; its
		// owner will observe the new topology itself.
		return RepairReport{ID: id, Action: ActionSkipped, Err: err}
	}
	defer o.endExclusive(id)
	o.topoMu.RLock()
	defer o.topoMu.RUnlock()

	// Classify the impact against the union of dead resources. The
	// deployment stays in the reverse indexes for its old footprint
	// throughout the repair — a concurrent failure of another resource
	// must still find it — and every commit point swaps the index
	// entries atomically with the fields.
	o.mu.Lock()
	sliceHit := dep.Slice != nil && dead.HitsAnyNode(dep.Slice.OPSs)
	hostHit := dead.HitsAnyNode(dep.Placement.Hosts)
	pathHit := dead.HitsAnyNode(dep.Path) || dead.HitsAnyLink(dep.primaryLinks)
	// A standby sharing a risk group with a dead link is suspect even
	// when its own resources survived: it is treated as hit (replanned)
	// and never swapped onto — "disjoint" must mean survivable.
	standbySuspect := dep.Standby != nil && dead.HitsAnySRLG(dep.Standby.SRLGs)
	standbyHit := dep.Standby != nil &&
		(standbySuspect || dead.HitsAnyNode(dep.Standby.Path) || dead.HitsAnyLink(dep.Standby.Links))
	standbyAlive := dep.Standby != nil && !standbySuspect &&
		resilience.PathAlive(o.topo, dep.Standby.Path)
	o.mu.Unlock()

	var action RepairAction
	var patchErr error
	switch {
	case sliceHit:
		action = ActionPatched
		patchErr = o.patchSlice(ctx, dep, dead)
	case hostHit:
		action = ActionReplaced
		patchErr = o.replaceAndRepath(ctx, dep, dead)
	case pathHit:
		if standbyAlive {
			action = ActionSwapped
			patchErr = o.swapToStandby(ctx, dep)
		} else {
			action = ActionRepathed
			patchErr = o.repath(ctx, dep)
		}
	case standbyHit:
		// The primary is intact; only the anticipation was consumed.
		// With a background optimizer attached the dead standby is just
		// dropped — the repair-completed event enqueues the async
		// re-protect, and zero Yen's runs happen on this path. Inline
		// mode replans here: still off the hot recovery path of any
		// chain actually carrying traffic over dead resources. A replan
		// failure is NOT grounds for the rebuild fallback — the chain
		// still works — but the report must say the chain is now
		// unprotected instead of silently claiming re-protection.
		if o.asyncOptimize() {
			o.mu.Lock()
			o.unindexLocked(dep)
			dep.Standby = nil
			o.indexLocked(dep)
			o.mu.Unlock()
			return RepairReport{ID: id, Action: ActionRestandby}
		}
		return RepairReport{ID: id, Action: ActionRestandby, Err: o.replanStandby(ctx, dep)}
	default:
		// The footprint changed since the index snapshot; the failure
		// no longer touches this deployment.
		return RepairReport{ID: id, Action: ActionSkipped}
	}
	if patchErr == nil {
		return RepairReport{ID: id, Action: action}
	}
	// Differential repair impossible (e.g. a dead endpoint VM, an
	// uncoverable VM group, λ exhaustion): rebuild everything.
	if err := o.rebuild(ctx, dep); err != nil {
		return RepairReport{ID: id, Action: ActionFailed, Err: err}
	}
	return RepairReport{ID: id, Action: ActionRebuilt}
}

// finishRepairFrom re-runs the pipeline from the given stage and, on
// success, commits the outcome: the reverse indexes swap from the old
// to the new footprint atomically with the field update, and any two-λ
// grace window closes only after the new rules are live.
func (o *Orchestrator) finishRepairFrom(p *pipeline, dep *Deployment, first stageID) error {
	if err := p.runFrom(first); err != nil {
		return err
	}
	o.mu.Lock()
	o.unindexLocked(dep)
	p.apply(dep)
	o.indexLocked(dep)
	dep.Repairs++
	o.mu.Unlock()
	p.commitWDM()
	return nil
}

// repath re-runs the connectivity stages of the pipeline (path →
// standby → wdm → rules) around the deployment's unchanged placement —
// the cold data-path repair, which also replans the standby.
func (o *Orchestrator) repath(ctx context.Context, dep *Deployment) error {
	return o.finishRepairFrom(o.pipelineFrom(ctx, dep), dep, stagePath)
}

// swapToStandby promotes the precomputed standby to primary: the
// pipeline re-enters at the WDM stage with the standby's route already
// in hand, so recovery performs no shortest-path computation at all —
// only a wavelength retune (two-λ grace) and a make-before-break rule
// swap. The consumed standby is cleared; a later ActionRestandby or any
// cold repair replans it.
func (o *Orchestrator) swapToStandby(ctx context.Context, dep *Deployment) error {
	p := o.pipelineFrom(ctx, dep)
	sb := dep.Standby
	p.path = append([]topology.NodeID(nil), sb.Path...)
	p.confined = sb.Confined
	p.standby = nil
	return o.finishRepairFrom(p, dep, stageWDM)
}

// replanStandby recomputes only the standby route (the primary is
// untouched, so this is not counted as a repair of the deployment) and
// swaps the reverse-index entries to the new anticipation footprint.
// On planning failure the dead standby is still dropped — the index
// must not keep routing failures at a stale alternate — and the error
// reports that the chain is left unprotected.
func (o *Orchestrator) replanStandby(ctx context.Context, dep *Deployment) error {
	p := o.pipelineFrom(ctx, dep)
	planErr := p.planStandby()
	o.mu.Lock()
	o.unindexLocked(dep)
	dep.Standby = p.standby // nil when planning failed
	o.indexLocked(dep)
	o.mu.Unlock()
	if planErr != nil {
		return fmt.Errorf("chain left unprotected: %w", planErr)
	}
	return nil
}

// replaceAndRepath migrates the VNF instances hosted on dead nodes to
// surviving hosts and re-runs the connectivity stages. The VC and slice
// are untouched.
func (o *Orchestrator) replaceAndRepath(ctx context.Context, dep *Deployment, dead resilience.FailureSet) error {
	p := o.pipelineFrom(ctx, dep)
	if err := o.migrateOff(p, dep, dead); err != nil {
		return err
	}
	return o.finishRepairFrom(p, dep, stagePath)
}

// patchSlice handles OPS failures inside the chain's AL: the vertex
// cover is re-run over the broken portion reusing surviving OPSs, the
// slice membership swaps under the existing reservation, VNFs hosted
// on failed OPSs (they may be optoelectronic) migrate, and the
// connectivity stages re-run against the patched slice. The VC ID,
// slice ID and bandwidth reservation all survive.
func (o *Orchestrator) patchSlice(ctx context.Context, dep *Deployment, dead resilience.FailureSet) error {
	vms := o.liveVMs(dep.Spec.Service)
	if len(vms) == 0 {
		return fmt.Errorf("no live VMs offer service %q", dep.Spec.Service)
	}
	vc, err := o.alloc.PatchVC(dep.VC.ID, vms)
	if err != nil {
		return err
	}
	slice, err := o.slices.PatchMembership(dep.Slice.ID, vc.AL.OPSs)
	if err != nil {
		// The allocator is already patched; the fallback rebuild
		// releases both by ID, so no unwind is needed here.
		return err
	}
	// The membership swap changes the footprint mid-repair: keep the
	// index exact at every commit point.
	o.mu.Lock()
	o.unindexLocked(dep)
	dep.VC = vc
	dep.Slice = slice
	o.indexLocked(dep)
	o.mu.Unlock()
	p := o.pipelineFrom(ctx, dep) // picks up the patched VC and slice
	if err := o.migrateOff(p, dep, dead); err != nil {
		return err
	}
	return o.finishRepairFrom(p, dep, stagePath)
}

// migrateOff moves every VNF instance the pipeline places on a dead
// node to a surviving candidate host — the AL's optoelectronic routers
// first (placement stays optical when capacity allows), then the PMs
// hosting the service's live VMs — updating the staged placement and
// its O/E/O accounting. Instances on surviving hosts are never touched.
func (o *Orchestrator) migrateOff(p *pipeline, dep *Deployment, dead resilience.FailureSet) error {
	var cands []topology.NodeID
	cands = append(cands, o.optoelectronicOf(p.vc.AL.OPSs)...)
	cands = append(cands, o.pmsOf(o.liveVMs(dep.Spec.Service))...)
	moved := false
	for idx, h := range p.place.Hosts {
		if !dead.Nodes[h] {
			continue
		}
		instID := dep.Instances[idx]
		hosted := false
		for _, cand := range cands {
			if dead.Nodes[cand] {
				continue
			}
			if err := o.mgr.Migrate(instID, cand); err != nil {
				continue
			}
			inst := o.mgr.Instance(instID)
			p.place.Hosts[idx] = cand
			p.place.Domains[idx] = inst.Domain
			hosted = true
			moved = true
			break
		}
		if !hosted {
			return fmt.Errorf("no surviving host can take instance %d (VNF %d)", instID, idx)
		}
	}
	if moved {
		p.place.Conversions = placement.CountOEO(p.place.Domains, o.mode)
	}
	return nil
}
