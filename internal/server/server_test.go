package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/alvc/alvc"
	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/topology"
)

// newTestServer stands a control plane up over the 8-rack/24-OPS
// topology the integration tests use (it fits several concurrent
// chains).
func newTestServer(t *testing.T, opts ...alvc.Option) (*httptest.Server, *alvc.Architecture) {
	t.Helper()
	cfg := alvc.DefaultTopology()
	cfg.Racks = 8
	cfg.OPSCount = 24
	cfg.ToRUplinks = 16
	cfg.OPSChords = 2
	return newTestServerWith(t, cfg, opts...)
}

// wideConfig returns a topology able to host many concurrent chains:
// every ToR sees every OPS, so each AL collapses to a single OPS and
// the pool supports up to OPSCount disjoint chains; PM capacity is
// raised so VNF hosting is not the bottleneck.
func wideConfig(opsCount int) alvc.TopologyConfig {
	cfg := alvc.DefaultTopology()
	cfg.Racks = 4
	cfg.PMsPerRack = 2
	cfg.VMsPerPM = 2
	cfg.OPSCount = opsCount
	cfg.ToRUplinks = opsCount
	cfg.OPSChords = 0
	cfg.Services = []string{"web"}
	cfg.PMCapacity = topology.Resources{CPUCores: 1 << 20, MemoryGB: 1 << 20, StorageGB: 1 << 20}
	return cfg
}

func newTestServerWith(t *testing.T, cfg alvc.TopologyConfig, opts ...alvc.Option) (*httptest.Server, *alvc.Architecture) {
	t.Helper()
	arch, err := alvc.New(cfg, opts...)
	if err != nil {
		t.Fatalf("alvc.New: %v", err)
	}
	srv, err := New(arch)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, arch
}

// do issues one request and returns the status and raw body.
func do(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest %s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func specBody(name, tenant, service string, nfs ...string) []byte {
	type nf struct {
		Name string `json:"name"`
	}
	refs := make([]nf, len(nfs))
	for i, n := range nfs {
		refs[i] = nf{Name: n}
	}
	data, _ := json.Marshal(map[string]any{
		"name": name, "tenant": tenant, "service": service,
		"nfs": refs, "bandwidth_gbps": 2.0, "flow_bytes": 1 << 20,
	})
	return data
}

func mustSpec(t *testing.T, data []byte) chain.Spec {
	t.Helper()
	var s chain.Spec
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("parse spec %s: %v", data, err)
	}
	return s
}

func mustUnmarshal[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, data, err)
	}
	return v
}

// TestLifecycleOverHTTP drives the acceptance sequence: provision →
// get → modify → upgrade → scale → inject node failure → observe
// repair → recover → move → delete.
func TestLifecycleOverHTTP(t *testing.T) {
	ts, arch := newTestServer(t)

	status, body := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "web", "firewall", "lb", "dpi"))
	if status != http.StatusCreated {
		t.Fatalf("provision: got %d, want 201 (%s)", status, body)
	}
	dep := mustUnmarshal[DeploymentJSON](t, body)
	if dep.State != "active" || len(dep.NFs) != 3 || len(dep.SliceOPSs) == 0 {
		t.Fatalf("unexpected deployment: %+v", dep)
	}
	base := fmt.Sprintf("%s/v1/chains/%d", ts.URL, dep.ID)

	status, body = do(t, "GET", base, nil)
	if status != http.StatusOK {
		t.Fatalf("get: got %d (%s)", status, body)
	}

	status, body = do(t, "POST", base+"/modify", []byte(`{"bandwidth_gbps": 5}`))
	if status != http.StatusOK {
		t.Fatalf("modify: got %d (%s)", status, body)
	}
	if got := mustUnmarshal[DeploymentJSON](t, body); got.BandwidthGbps != 5 {
		t.Fatalf("modify: bandwidth %f, want 5", got.BandwidthGbps)
	}

	status, body = do(t, "POST", base+"/upgrade", nil)
	if status != http.StatusOK {
		t.Fatalf("upgrade: got %d (%s)", status, body)
	}
	if got := mustUnmarshal[DeploymentJSON](t, body); got.Version != 2 {
		t.Fatalf("upgrade: version %d, want 2", got.Version)
	}

	status, body = do(t, "POST", base+"/scale", []byte(`{"nf_index": 0, "replicas": 2}`))
	if status != http.StatusOK {
		t.Fatalf("scale: got %d (%s)", status, body)
	}

	// Fail an OPS of the chain's slice; the orchestrator must repair
	// the chain around it.
	victim := dep.SliceOPSs[0]
	status, body = do(t, "POST", fmt.Sprintf("%s/v1/failures/%d", ts.URL, victim), nil)
	if status != http.StatusOK {
		t.Fatalf("fail node: got %d (%s)", status, body)
	}
	fr := mustUnmarshal[FailureResponse](t, body)
	found := false
	for _, id := range fr.Repaired {
		if id == dep.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure response does not list deployment %d as repaired: %+v", dep.ID, fr)
	}
	status, body = do(t, "GET", base, nil)
	if status != http.StatusOK {
		t.Fatalf("get after repair: got %d (%s)", status, body)
	}
	repaired := mustUnmarshal[DeploymentJSON](t, body)
	if repaired.Repairs != 1 || repaired.State != "active" {
		t.Fatalf("after repair: %+v", repaired)
	}
	for _, ops := range repaired.SliceOPSs {
		if ops == victim {
			t.Fatalf("repaired slice still contains failed OPS %d", victim)
		}
	}

	status, body = do(t, "DELETE", fmt.Sprintf("%s/v1/failures/%d", ts.URL, victim), nil)
	if status != http.StatusOK {
		t.Fatalf("recover node: got %d (%s)", status, body)
	}

	// Move NF 0 to another live PM.
	var target topology.NodeID
	for _, pm := range arch.Topology().NodeIDs(topology.KindPhysicalMachine) {
		if pm != repaired.Hosts[0] {
			target = pm
			break
		}
	}
	status, body = do(t, "POST", base+"/move", fmt.Appendf(nil, `{"nf_index": 0, "to": %d}`, target))
	if status != http.StatusOK {
		t.Fatalf("move: got %d (%s)", status, body)
	}
	if got := mustUnmarshal[DeploymentJSON](t, body); got.Hosts[0] != target {
		t.Fatalf("move: host %d, want %d", got.Hosts[0], target)
	}

	status, body = do(t, "DELETE", base, nil)
	if status != http.StatusOK {
		t.Fatalf("delete: got %d (%s)", status, body)
	}
	if got := mustUnmarshal[DeploymentJSON](t, body); got.State != "deleted" {
		t.Fatalf("delete: state %s, want deleted", got.State)
	}

	// The listing filter sees it only under state=deleted.
	status, body = do(t, "GET", ts.URL+"/v1/chains?state=active", nil)
	if status != http.StatusOK || string(bytes.TrimSpace(body)) != "[]" {
		t.Fatalf("list active after delete: %d %s", status, body)
	}
	status, body = do(t, "GET", ts.URL+"/v1/chains?state=deleted", nil)
	if status != http.StatusOK {
		t.Fatalf("list deleted: got %d", status)
	}
	if got := mustUnmarshal[[]DeploymentJSON](t, body); len(got) != 1 || got[0].ID != dep.ID {
		t.Fatalf("list deleted: %+v", got)
	}
}

func TestMalformedRequests400(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, method, path string
		body               []byte
	}{
		{"provision bad json", "POST", "/v1/chains", []byte(`{"name": `)},
		{"provision missing fields", "POST", "/v1/chains", []byte(`{"name":"x"}`)},
		{"provision trailing garbage", "POST", "/v1/chains", append(specBody("c", "t", "web", "nat"), []byte(`{"second":1}`)...)},
		{"batch bad json", "POST", "/v1/chains:batch", []byte(`[not json`)},
		{"batch empty", "POST", "/v1/chains:batch", []byte(`{"specs": []}`)},
		{"modify bad json", "POST", "/v1/chains/1/modify", []byte(`{`)},
		{"modify non-positive", "POST", "/v1/chains/1/modify", []byte(`{"bandwidth_gbps": 0}`)},
		{"scale bad json", "POST", "/v1/chains/1/scale", []byte(`"nope"`)},
		{"move bad json", "POST", "/v1/chains/1/move", []byte(`{]`)},
		{"bad id", "GET", "/v1/chains/abc", nil},
		{"negative id", "DELETE", "/v1/chains/-4", nil},
		{"bad node id", "POST", "/v1/failures/xyz", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, tc.method, ts.URL+tc.path, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("got %d, want 400 (%s)", status, body)
			}
			if er := mustUnmarshal[ErrorResponse](t, body); er.Error == "" {
				t.Fatalf("error body missing: %s", body)
			}
		})
	}
}

func TestUnknownDeployment404(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct{ method, path string }{
		{"GET", "/v1/chains/999"},
		{"DELETE", "/v1/chains/999"},
		{"POST", "/v1/chains/999/upgrade"},
	}
	for _, tc := range cases {
		status, body := do(t, tc.method, ts.URL+tc.path, nil)
		if status != http.StatusNotFound {
			t.Fatalf("%s %s: got %d, want 404 (%s)", tc.method, tc.path, status, body)
		}
	}
	status, body := do(t, "POST", ts.URL+"/v1/chains/999/modify", []byte(`{"bandwidth_gbps": 1}`))
	if status != http.StatusNotFound {
		t.Fatalf("modify unknown: got %d (%s)", status, body)
	}
	status, body = do(t, "POST", ts.URL+"/v1/failures/99999", nil)
	if status != http.StatusNotFound {
		t.Fatalf("fail unknown node: got %d (%s)", status, body)
	}
}

func TestProvisionOverCapacity409(t *testing.T) {
	ts, _ := newTestServer(t)
	// A per-request demand override no PM can satisfy exhausts the
	// electronic domain: capacity conflict, not a malformed request.
	body := []byte(`{"name":"huge","tenant":"t1","service":"web",
		"nfs":[{"name":"firewall","cpu":1000000}],
		"bandwidth_gbps":1,"flow_bytes":1024}`)
	status, resp := do(t, "POST", ts.URL+"/v1/chains", body)
	if status != http.StatusConflict {
		t.Fatalf("over-capacity provision: got %d, want 409 (%s)", status, resp)
	}
}

func TestProvisionUnknownService422(t *testing.T) {
	ts, _ := newTestServer(t)
	status, resp := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "no-such-service", "nat"))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown service: got %d, want 422 (%s)", status, resp)
	}
}

func TestDuplicateChain409(t *testing.T) {
	ts, _ := newTestServer(t)
	body := specBody("dup", "t1", "web", "nat")
	if status, resp := do(t, "POST", ts.URL+"/v1/chains", body); status != http.StatusCreated {
		t.Fatalf("first provision: %d (%s)", status, resp)
	}
	status, resp := do(t, "POST", ts.URL+"/v1/chains", body)
	if status != http.StatusConflict {
		t.Fatalf("duplicate provision: got %d, want 409 (%s)", status, resp)
	}
	// After deleting the holder the flow key is free again.
	if status, _ := do(t, "DELETE", ts.URL+"/v1/chains/1", nil); status != http.StatusOK {
		t.Fatalf("delete: %d", status)
	}
	if status, resp := do(t, "POST", ts.URL+"/v1/chains", body); status != http.StatusCreated {
		t.Fatalf("re-provision after delete: got %d, want 201 (%s)", status, resp)
	}
}

func TestDeleteTwice409(t *testing.T) {
	ts, _ := newTestServer(t)
	status, body := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "web", "nat"))
	if status != http.StatusCreated {
		t.Fatalf("provision: %d (%s)", status, body)
	}
	dep := mustUnmarshal[DeploymentJSON](t, body)
	url := fmt.Sprintf("%s/v1/chains/%d", ts.URL, dep.ID)
	if status, _ = do(t, "DELETE", url, nil); status != http.StatusOK {
		t.Fatalf("first delete: %d", status)
	}
	status, body = do(t, "DELETE", url, nil)
	if status != http.StatusConflict {
		t.Fatalf("second delete: got %d, want 409 (%s)", status, body)
	}
}

func TestBatchProvision(t *testing.T) {
	ts, _ := newTestServerWith(t, wideConfig(64))
	var req BatchRequest
	for i := 0; i < 20; i++ {
		req.Specs = append(req.Specs, mustSpec(t, specBody(fmt.Sprintf("c%d", i), "t1", "web", "firewall", "nat")))
	}
	body, _ := json.Marshal(req)
	status, resp := do(t, "POST", ts.URL+"/v1/chains:batch", body)
	if status != http.StatusCreated {
		t.Fatalf("batch: got %d, want 201 (%s)", status, resp)
	}
	br := mustUnmarshal[BatchResponse](t, resp)
	if br.Provisioned != 20 || br.Failed != 0 {
		t.Fatalf("batch: provisioned %d failed %d, want 20/0", br.Provisioned, br.Failed)
	}
	status, resp = do(t, "GET", ts.URL+"/v1/chains?state=active", nil)
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	if got := mustUnmarshal[[]DeploymentJSON](t, resp); len(got) != 20 {
		t.Fatalf("active after batch: %d, want 20", len(got))
	}
}

func TestBatchDuplicateFlowKeys(t *testing.T) {
	ts, _ := newTestServerWith(t, wideConfig(16))
	var req BatchRequest
	for i := 0; i < 3; i++ {
		req.Specs = append(req.Specs, mustSpec(t, specBody("same", "t1", "web", "nat")))
	}
	body, _ := json.Marshal(req)
	status, resp := do(t, "POST", ts.URL+"/v1/chains:batch", body)
	if status != http.StatusMultiStatus {
		t.Fatalf("duplicate batch: got %d, want 207 (%s)", status, resp)
	}
	br := mustUnmarshal[BatchResponse](t, resp)
	if br.Provisioned != 1 || br.Failed != 2 {
		t.Fatalf("duplicate batch: provisioned %d failed %d, want 1/2", br.Provisioned, br.Failed)
	}
}

// TestConcurrentTraffic hammers the server from many goroutines —
// batch provisions, singleton provisions, reads and failure injection
// all at once. Run under -race this is the control plane's
// thread-safety proof.
func TestConcurrentTraffic(t *testing.T) {
	ts, arch := newTestServerWith(t, wideConfig(96))
	var wg sync.WaitGroup
	// Two batch clients.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var req BatchRequest
			for i := 0; i < 15; i++ {
				req.Specs = append(req.Specs, mustSpec(t, specBody(fmt.Sprintf("b%d-%d", c, i), fmt.Sprintf("tenant%d", c), "web", "firewall")))
			}
			body, _ := json.Marshal(req)
			status, resp := do(t, "POST", ts.URL+"/v1/chains:batch", body)
			if status != http.StatusCreated && status != http.StatusMultiStatus && status != http.StatusConflict {
				t.Errorf("batch client %d: status %d (%s)", c, status, resp)
			}
		}(c)
	}
	// Singleton provision clients.
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			status, resp := do(t, "POST", ts.URL+"/v1/chains", specBody(fmt.Sprintf("s%d", c), "tenant-s", "web", "nat"))
			if status != http.StatusCreated && status != http.StatusConflict && status != http.StatusUnprocessableEntity {
				t.Errorf("singleton %d: status %d (%s)", c, status, resp)
			}
		}(c)
	}
	// Read clients.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if status, _ := do(t, "GET", ts.URL+"/v1/metrics", nil); status != http.StatusOK {
					t.Errorf("metrics: status %d", status)
				}
				if status, _ := do(t, "GET", ts.URL+"/v1/chains", nil); status != http.StatusOK {
					t.Errorf("list: status %d", status)
				}
			}
		}()
	}
	// One failure-injection client flapping a PM.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pm := arch.Topology().NodeIDs(topology.KindPhysicalMachine)[0]
		for i := 0; i < 5; i++ {
			do(t, "POST", fmt.Sprintf("%s/v1/failures/%d", ts.URL, pm), nil)
			do(t, "DELETE", fmt.Sprintf("%s/v1/failures/%d", ts.URL, pm), nil)
		}
	}()
	wg.Wait()

	// Invariants survived the storm: ALs disjoint, state readable.
	if !arch.Orchestrator().Allocator().Disjoint() {
		t.Fatal("ALs are not disjoint after concurrent traffic")
	}
	status, _ := do(t, "GET", ts.URL+"/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("final metrics: %d", status)
	}
}

func TestTopologyAndMetricsEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	status, body := do(t, "GET", ts.URL+"/v1/topology", nil)
	if status != http.StatusOK {
		t.Fatalf("topology: %d", status)
	}
	topo := mustUnmarshal[struct {
		Nodes []json.RawMessage `json:"nodes"`
		Links []json.RawMessage `json:"links"`
	}](t, body)
	if len(topo.Nodes) == 0 || len(topo.Links) == 0 {
		t.Fatalf("topology empty: %d nodes %d links", len(topo.Nodes), len(topo.Links))
	}

	if status, _ = do(t, "POST", ts.URL+"/v1/chains", specBody("m1", "t1", "web", "firewall")); status != http.StatusCreated {
		t.Fatalf("provision: %d", status)
	}
	status, body = do(t, "GET", ts.URL+"/v1/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	m := mustUnmarshal[MetricsResponse](t, body)
	if m.Deployments.Active != 1 || m.InstalledRules == 0 || m.Topology.OPSs == 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Utilization["electronic"].Hosts == 0 {
		t.Fatalf("metrics utilization missing electronic domain: %+v", m.Utilization)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	status, _ := do(t, "GET", ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
}
