package chain

import (
	"fmt"
	"sort"
)

// ForwardingGraph is the network forwarding graph of an NFC: a DAG over
// NF positions with a virtual ingress (index -1 omitted; position 0 is
// the first NF after ingress) expressed as edges between NF indices.
// A linear chain is the path 0→1→…→n-1; complex chains add branches
// (e.g. a load balancer fanning out to two DPI stages).
type ForwardingGraph struct {
	nfs   []NFRef
	edges map[int][]int // from -> sorted to
}

// NewForwardingGraph builds the linear forwarding graph of the spec.
func NewForwardingGraph(spec Spec) (*ForwardingGraph, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("chain: forwarding graph: %w", err)
	}
	fg := &ForwardingGraph{
		nfs:   append([]NFRef(nil), spec.NFs...),
		edges: make(map[int][]int),
	}
	for i := 0; i+1 < len(spec.NFs); i++ {
		fg.edges[i] = []int{i + 1}
	}
	return fg, nil
}

// Len returns the number of NF positions.
func (fg *ForwardingGraph) Len() int { return len(fg.nfs) }

// NF returns the NF at position i.
func (fg *ForwardingGraph) NF(i int) (NFRef, error) {
	if i < 0 || i >= len(fg.nfs) {
		return NFRef{}, fmt.Errorf("chain: forwarding graph: position %d out of range [0,%d)", i, len(fg.nfs))
	}
	return fg.nfs[i], nil
}

// AddEdge inserts a branch edge from position u to position v.
func (fg *ForwardingGraph) AddEdge(u, v int) error {
	if u < 0 || u >= len(fg.nfs) || v < 0 || v >= len(fg.nfs) {
		return fmt.Errorf("chain: forwarding graph: edge %d->%d out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("chain: forwarding graph: self edge on %d", u)
	}
	for _, existing := range fg.edges[u] {
		if existing == v {
			return nil
		}
	}
	fg.edges[u] = append(fg.edges[u], v)
	sort.Ints(fg.edges[u])
	return nil
}

// Successors returns the sorted successors of position u.
func (fg *ForwardingGraph) Successors(u int) []int {
	return append([]int(nil), fg.edges[u]...)
}

// Validate checks the graph is a DAG with a single source (position 0)
// and at least one sink, and that every position is reachable from the
// source.
func (fg *ForwardingGraph) Validate() error {
	n := len(fg.nfs)
	indeg := make([]int, n)
	for _, tos := range fg.edges {
		for _, v := range tos {
			indeg[v]++
		}
	}
	for i := 1; i < n; i++ {
		if indeg[i] == 0 {
			return fmt.Errorf("chain: forwarding graph: position %d unreachable (no incoming edges)", i)
		}
	}
	if n > 0 && indeg[0] != 0 {
		return fmt.Errorf("chain: forwarding graph: source position 0 has incoming edges")
	}
	if _, err := fg.TopoOrder(); err != nil {
		return err
	}
	// Reachability from 0.
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range fg.edges[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("chain: forwarding graph: position %d not reachable from source", i)
		}
	}
	return nil
}

// TopoOrder returns a deterministic topological order of the positions,
// or an error if the graph has a cycle.
func (fg *ForwardingGraph) TopoOrder() ([]int, error) {
	n := len(fg.nfs)
	indeg := make([]int, n)
	for _, tos := range fg.edges {
		for _, v := range tos {
			indeg[v]++
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range fg.edges[u] {
			indeg[v]--
			if indeg[v] == 0 {
				// Insert keeping ready sorted for determinism.
				i := sort.SearchInts(ready, v)
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = v
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("chain: forwarding graph: cycle detected (%d of %d positions ordered)", len(order), n)
	}
	return order, nil
}

// Paths enumerates every source→sink path (by NF positions). Useful
// for verifying complex chains; exponential in branch count, intended
// for the small graphs chains actually are.
func (fg *ForwardingGraph) Paths() [][]int {
	if len(fg.nfs) == 0 {
		return nil
	}
	var out [][]int
	var walk func(u int, path []int)
	walk = func(u int, path []int) {
		path = append(path, u)
		succ := fg.edges[u]
		if len(succ) == 0 {
			out = append(out, append([]int(nil), path...))
			return
		}
		for _, v := range succ {
			walk(v, path)
		}
	}
	walk(0, nil)
	return out
}
