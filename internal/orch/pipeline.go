package orch

import (
	"fmt"

	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/cluster"
	"github.com/alvc/alvc/internal/nfv"
	"github.com/alvc/alvc/internal/optical"
	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/sdn"
	"github.com/alvc/alvc/internal/topology"
)

// stageID names one stage of the provisioning pipeline. Stages run in
// declaration order; each registers an undo for what it created, so a
// failed run unwinds only its own side effects. Repair re-enters the
// pipeline at the first stage a failure invalidated (runFrom) instead
// of always rebuilding from stageCluster.
type stageID int

// Pipeline stages, in execution order.
const (
	// stageCluster builds the virtual cluster: one VC per NFC (§IV-C),
	// its AL disjoint from all other chains' ALs.
	stageCluster stageID = iota
	// stageSlice allocates the optical slice — the AL itself (§IV-C).
	stageSlice
	// stagePlacement decides the hosting domain of every VNF.
	stagePlacement
	// stageInstantiate creates and activates the VNF instances.
	stageInstantiate
	// stagePath computes the route src VM → VNF hosts → dst VM,
	// preferring a slice-confined route.
	stagePath
	// stageWDM assigns a wavelength on the path's optical segments
	// (skipped when WDM is disabled).
	stageWDM
	// stageRules swaps the flow rules along the path in make-before-
	// break order.
	stageRules
	numStages
)

// String returns the stage name.
func (s stageID) String() string {
	switch s {
	case stageCluster:
		return "cluster"
	case stageSlice:
		return "slice"
	case stagePlacement:
		return "placement"
	case stageInstantiate:
		return "instantiate"
	case stagePath:
		return "path"
	case stageWDM:
		return "wdm"
	case stageRules:
		return "rules"
	default:
		return fmt.Sprintf("stage(%d)", int(s))
	}
}

// pipeline carries one chain build (or partial rebuild) through the
// staged provisioning sequence. A fresh pipeline (newPipeline) starts
// empty and runs every stage; a seeded pipeline (pipelineFrom) starts
// from a live deployment's surviving state so repair can re-run only
// the invalidated suffix. Callers must hold topoMu (read side).
type pipeline struct {
	o       *Orchestrator
	spec    chain.Spec
	flowKey string

	// vms are the live VMs offering the spec's service (full builds
	// only; seeded pipelines keep the deployment's endpoints instead).
	vms      []topology.NodeID
	profiles []nfv.NFProfile
	src, dst topology.NodeID

	vc        *cluster.VC
	slice     *optical.Slice
	place     placement.Result
	instances []nfv.InstanceID
	path      []topology.NodeID
	confined  bool
	lambda    int

	// reentry marks a pipeline seeded from a live deployment: its
	// connectivity stages must swap the previous generation of
	// wavelength and rules instead of plainly installing.
	reentry bool

	undo []func()
}

// newPipeline resolves the spec (live VMs, NF profiles with demand
// overrides) and returns a pipeline ready to run from stageCluster.
func (o *Orchestrator) newPipeline(spec chain.Spec, flowKey string) (*pipeline, error) {
	vms := o.liveVMs(spec.Service)
	if len(vms) == 0 {
		return nil, fmt.Errorf("no live VMs offer service %q", spec.Service)
	}
	profiles, err := nfv.ResolveChain(spec.NFNames())
	if err != nil {
		return nil, err
	}
	for i, ref := range spec.NFs {
		if !ref.Demand.IsZero() {
			profiles[i].Demand = ref.Demand
		}
	}
	return &pipeline{
		o:        o,
		spec:     spec,
		flowKey:  flowKey,
		vms:      vms,
		profiles: profiles,
		src:      vms[0],
		dst:      vms[len(vms)-1],
		lambda:   -1,
	}, nil
}

// pipelineFrom seeds a pipeline with a deployment's surviving state.
// Placement is deep-copied so in-flight mutation (instance migration)
// never races snapshot readers; the remaining fields are immutable
// records or replaced wholesale by the stages that recompute them. The
// caller must hold the deployment's exclusive-operation claim.
func (o *Orchestrator) pipelineFrom(dep *Deployment) *pipeline {
	place := dep.Placement
	place.Hosts = append([]topology.NodeID(nil), dep.Placement.Hosts...)
	place.Domains = append([]topology.Domain(nil), dep.Placement.Domains...)
	return &pipeline{
		o:         o,
		spec:      dep.Spec,
		flowKey:   dep.FlowKey(),
		src:       dep.Path[0],
		dst:       dep.Path[len(dep.Path)-1],
		vc:        dep.VC,
		slice:     dep.Slice,
		place:     place,
		instances: dep.Instances,
		path:      dep.Path,
		confined:  dep.SliceConfined,
		lambda:    dep.Lambda,
		reentry:   true,
	}
}

func (p *pipeline) pushUndo(f func()) { p.undo = append(p.undo, f) }

// rollback unwinds, in reverse order, everything the stages run so far
// created.
func (p *pipeline) rollback() {
	for i := len(p.undo) - 1; i >= 0; i-- {
		p.undo[i]()
	}
	p.undo = nil
}

// runFrom executes the pipeline from the given stage to the end. On
// error every undo registered by this pipeline is unwound and the
// error is returned annotated with the failing stage.
func (p *pipeline) runFrom(first stageID) error {
	for s := first; s < numStages; s++ {
		if err := p.runStage(s); err != nil {
			p.rollback()
			return err
		}
	}
	return nil
}

func (p *pipeline) runStage(s stageID) error {
	switch s {
	case stageCluster:
		return p.runCluster()
	case stageSlice:
		return p.runSlice()
	case stagePlacement:
		return p.runPlacement()
	case stageInstantiate:
		return p.runInstantiate()
	case stagePath:
		return p.runPath()
	case stageWDM:
		return p.runWDM()
	case stageRules:
		return p.runRules()
	default:
		return fmt.Errorf("orch: unknown pipeline stage %d", int(s))
	}
}

func (p *pipeline) runCluster() error {
	vc, err := p.o.alloc.BuildVC(p.spec.Service, p.vms)
	if err != nil {
		return err
	}
	p.vc = vc
	p.pushUndo(func() { _ = p.o.alloc.Release(vc.ID) })
	return nil
}

func (p *pipeline) runSlice() error {
	slice, err := p.o.slices.Allocate(p.spec.Tenant, p.vc.AL.OPSs, p.spec.BandwidthGbps)
	if err != nil {
		return fmt.Errorf("slice: %w", err)
	}
	p.slice = slice
	p.pushUndo(func() { _ = p.o.slices.Release(slice.ID) })
	return nil
}

func (p *pipeline) runPlacement() error {
	// Optical candidates are the AL's optoelectronic routers;
	// electronic candidates the PMs hosting the service VMs.
	opticalHosts := p.o.optoelectronicOf(p.vc.AL.OPSs)
	electronicHosts := p.o.pmsOf(p.vms)
	ctx, err := placement.NewContext(p.o.topo, p.o.mgr.Ledger(), opticalHosts, electronicHosts, p.profiles, p.o.mode)
	if err != nil {
		return err
	}
	place, err := p.o.policy.Place(ctx)
	if err != nil {
		return fmt.Errorf("placement: %w", err)
	}
	p.place = place
	return nil
}

func (p *pipeline) runInstantiate() error {
	p.instances = nil
	for i, prof := range p.profiles {
		inst, err := p.o.mgr.Create(prof.Type, p.place.Hosts[i])
		if err != nil {
			return fmt.Errorf("create VNF %d: %w", i, err)
		}
		id := inst.ID
		p.pushUndo(func() { _ = p.o.mgr.Terminate(id) })
		if err := p.o.mgr.Activate(id); err != nil {
			return fmt.Errorf("activate VNF %d: %w", i, err)
		}
		p.instances = append(p.instances, id)
	}
	return nil
}

func (p *pipeline) runPath() error {
	p.confined = true
	path, err := p.o.ctrl.ComputePathVia(p.src, p.place.Hosts, p.dst, p.slice.OPSSet())
	if err != nil {
		p.confined = false
		path, err = p.o.ctrl.ComputePathVia(p.src, p.place.Hosts, p.dst, nil)
	}
	if err != nil {
		return fmt.Errorf("path: %w", err)
	}
	p.path = path
	return nil
}

func (p *pipeline) runWDM() error {
	p.lambda = -1
	if p.o.wdm == nil {
		return nil
	}
	// A stage re-run during repair may find the flow still holding its
	// previous wavelength: release it first so the old links are free
	// for reuse (continuity-constrained first-fit often wants them).
	if p.reentry {
		if _, ok := p.o.wdm.AssignmentOf(p.flowKey); ok {
			if err := p.o.wdm.Release(p.flowKey); err != nil {
				return fmt.Errorf("wdm: %w", err)
			}
		}
	}
	links, err := optical.OpticalSegmentLinks(p.o.topo, p.path)
	if err != nil {
		return fmt.Errorf("wdm: %w", err)
	}
	if len(links) == 0 {
		return nil
	}
	lambda, err := p.o.wdm.AssignPath(p.flowKey, links)
	if err != nil {
		return fmt.Errorf("wdm: %w", err)
	}
	p.lambda = lambda
	p.pushUndo(func() { _ = p.o.wdm.Release(p.flowKey) })
	return nil
}

func (p *pipeline) runRules() error {
	// Make-before-break on re-entry: a repair re-run installs the new
	// generation of rules before the previous generation disappears. A
	// fresh build has no previous generation and takes the plain
	// install, which skips Reroute's old-generation table scan.
	m := sdn.Match{FlowKey: p.flowKey, Src: p.src, Dst: p.dst}
	var err error
	if p.reentry {
		_, err = p.o.ctrl.Reroute(m, p.path, 100)
	} else {
		_, err = p.o.ctrl.InstallPath(m, p.path, 100)
	}
	if err != nil {
		return fmt.Errorf("install: %w", err)
	}
	p.pushUndo(func() { p.o.ctrl.RemoveFlow(p.flowKey) })
	return nil
}

// apply copies the pipeline's outcome onto the deployment record. The
// caller must hold o.mu (and the deployment's exclusive claim).
func (p *pipeline) apply(dep *Deployment) {
	dep.VC = p.vc
	dep.Slice = p.slice
	dep.Instances = p.instances
	dep.Placement = p.place
	dep.Path = p.path
	dep.SliceConfined = p.confined
	dep.Lambda = p.lambda
	dep.Conversions = p.place.Conversions
	dep.EnergyJoules = p.o.costModel.TotalEnergy(p.place.Conversions, dep.Spec.FlowBytes)
}
