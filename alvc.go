// Package alvc is the public API of the AL-VC reproduction: the
// Abstraction Layer based Virtual Cluster architecture for network
// function chaining of Bashir, Ohsita and Murata (IEEE ICDCSW 2016,
// DOI 10.1109/ICDCSW.2016.42).
//
// The architecture virtualizes a hybrid electronic/optical data center
// into service-based virtual clusters. Each cluster pairs a group of
// VMs offering one service with an abstraction layer (AL): the minimum
// set of optical packet switches connecting all of the group's
// machines, selected by a max-weight vertex-cover construction
// (paper §III-C). In NFV deployments one cluster hosts one network
// function chain; the AL doubles as the chain's optical slice, and
// low-demand VNFs are pushed onto optoelectronic routers inside the
// optical domain to save O/E/O conversions (paper §IV).
//
// # Quick start
//
//	arch, err := alvc.New(alvc.DefaultTopology())
//	if err != nil { ... }
//	spec, _ := alvc.LinearChain("my-chain", "tenant-a", "web", 2.0, 1<<20,
//		"firewall", "lb", "dpi")
//	dep, err := arch.Deploy(spec)
//	fmt.Println(dep.Conversions, dep.EnergyJoules)
//
// The facade re-exports the concrete types of the internal packages as
// aliases, so the whole system — topology generation, AL construction,
// VNF lifecycle, SDN provisioning, placement policies and the flow
// simulator — is reachable from this one import.
package alvc

import (
	"context"
	"fmt"
	"time"

	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/cluster"
	"github.com/alvc/alvc/internal/flow"
	"github.com/alvc/alvc/internal/nfv"
	"github.com/alvc/alvc/internal/optical"
	"github.com/alvc/alvc/internal/optimizer"
	"github.com/alvc/alvc/internal/orch"
	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/resilience"
	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/trace"
	"github.com/alvc/alvc/internal/workload"
)

// Compile-time interface checks for the re-exported policy and builder
// types.
var (
	_ PlacementPolicy = AllElectronic{}
	_ PlacementPolicy = OpticalFirst{}
	_ PlacementPolicy = OptimalPlacement{}
	_ ALBuilder       = PaperBuilder{}
	_ ALBuilder       = GreedyBuilder{}
)

// Re-exported core types. Aliases keep the public façade thin while the
// implementation lives in focused internal packages.
type (
	// Topology is the hybrid electronic/optical data-center network.
	Topology = topology.Topology
	// TopologyConfig parameterizes the deterministic DCN generator.
	TopologyConfig = topology.GenConfig
	// NodeID identifies a node of the topology.
	NodeID = topology.NodeID
	// LinkID identifies a link of the topology.
	LinkID = topology.LinkID
	// Resources is a CPU/memory/storage vector.
	Resources = topology.Resources
	// Spec is a network-function-chain request.
	Spec = chain.Spec
	// NFRef is one NF position within a Spec.
	NFRef = chain.NFRef
	// Deployment is an orchestrated chain with its cluster, slice,
	// VNFs and provisioned path.
	Deployment = orch.Deployment
	// DeploymentID identifies a Deployment.
	DeploymentID = orch.DeploymentID
	// VC is a virtual cluster (VM group + abstraction layer).
	VC = cluster.VC
	// AL is an abstraction layer.
	AL = cluster.AL
	// ALBuilder constructs abstraction layers.
	ALBuilder = cluster.Builder
	// PlacementPolicy decides VNF domains (optical vs electronic).
	PlacementPolicy = placement.Policy
	// ChainRequest is a workload-generated chain request.
	ChainRequest = workload.ChainRequest
	// FlowResult aggregates measured flow costs.
	FlowResult = flow.Result
	// BatchResult is the per-spec outcome of a DeployBatch call.
	BatchResult = orch.BatchResult
	// RepairReport is one chain's reconciliation outcome after a
	// failure (action taken: swapped / repathed / restandby / replaced /
	// patched / rebuilt / failed / skipped).
	RepairReport = orch.RepairReport
	// RepairAction classifies what the reconciler did to one chain.
	RepairAction = orch.RepairAction
	// Standby is a chain's precomputed alternate route; a live standby
	// turns a data-path failure into a pure rule swap.
	Standby = resilience.Standby
	// ImpactEntry is one chain inside a resource's blast radius with the
	// roles the resource plays for it (slice/host/path/standby).
	ImpactEntry = orch.ImpactEntry
	// Optimizer is the background maintenance engine: async standby
	// re-protection, recover-time refresh, placement re-homing and
	// λ defragmentation behind a deduplicating prioritized queue.
	Optimizer = optimizer.Engine
	// OptimizerOptions tunes the background optimizer.
	OptimizerOptions = optimizer.Options
	// OptimizerStatus is the engine's observable state (queue depth,
	// per-kind counters, recent task results).
	OptimizerStatus = optimizer.Status
	// OptimizerTaskResult is one executed maintenance task's outcome.
	OptimizerTaskResult = optimizer.TaskResult
	// OrchEvent is one orchestrator lifecycle notification (repair
	// completed, node/link recovered, placement changed, delete).
	OrchEvent = orch.Event
	// EventSink receives orchestrator lifecycle events.
	EventSink = orch.EventSink
	// EventMux fans orchestrator events out to independent sinks; the
	// facade installs one automatically with WithOptimizer (see
	// Architecture.SubscribeEvents).
	EventMux = orch.EventMux
	// ShardMode selects what the shard router hashes (tenant or flow
	// key) to pick a chain's owning shard.
	ShardMode = orch.ShardMode
	// ShardStat is one orchestrator shard's slice of the fleet
	// (deployments by state, repairs, OPS pool size, controller load).
	ShardStat = orch.ShardStat
	// FailureDebouncer coalesces a failure-event storm into batched
	// reconciliation passes (WithFailureDebounce).
	FailureDebouncer = orch.FailureDebouncer
	// DebounceStats counts the failure debouncer's coalescing work.
	DebounceStats = orch.DebounceStats
	// StormStats counts the optimizer's storm-mode coalescing.
	StormStats = optimizer.StormStats
	// GroupPlanStats counts the storm-group planner's shared-search
	// outcomes (chains planned, unique Yen buckets, sharing, fallbacks).
	GroupPlanStats = optimizer.GroupPlanStats
	// GroupReport is one domain-level re-protection pass's outcomes.
	GroupReport = orch.GroupReport
	// Tracer issues request-scoped spans into the trace store; nil-safe
	// (every method on a nil Tracer is a no-op).
	Tracer = trace.Tracer
	// TraceStore is the bounded in-memory span store behind
	// GET /v1/traces.
	TraceStore = trace.Store
	// TraceOptions bounds the in-memory trace store (ring sizes,
	// slowest/errored retention, span budget).
	TraceOptions = trace.StoreOptions
	// TraceSpan is one recorded operation of a trace.
	TraceSpan = trace.Span
	// TraceSummary is one trace's roll-up (id, kind, duration, span
	// count) as listed by GET /v1/traces.
	TraceSummary = trace.Summary
	// TraceQuery filters trace listings.
	TraceQuery = trace.Query
)

// Shard routing modes for WithShardMode.
const (
	// ShardByTenant routes every chain of a tenant to the same shard
	// (the default): tenant isolation maps onto state isolation.
	ShardByTenant = orch.ShardByTenant
	// ShardByChain routes on the full tenant/name flow key, spreading
	// even one giant tenant across all shards (rack-pod-style
	// decomposition).
	ShardByChain = orch.ShardByChain
)

// Re-exported AL builders (paper §III-C and its baselines).
type (
	// PaperBuilder is the paper's max-weight vertex-cover AL
	// construction.
	PaperBuilder = cluster.PaperBuilder
	// GreedyBuilder is classic greedy set cover.
	GreedyBuilder = cluster.GreedyBuilder
	// RandomBuilder reproduces the earlier random construction [15].
	RandomBuilder = cluster.RandomBuilder
)

// Re-exported placement policies (paper §IV-D and its baselines).
type (
	// AllElectronic keeps every VNF on servers.
	AllElectronic = placement.AllElectronic
	// OpticalFirst is the paper's greedy optical placement.
	OpticalFirst = placement.OpticalFirst
	// OptimalPlacement is the exhaustive minimum-conversion placement.
	OptimalPlacement = placement.Optimal
)

// DefaultTopology returns the generator configuration used by the
// examples: 8 racks over a 6-OPS optical core with three services.
func DefaultTopology() TopologyConfig { return topology.DefaultGenConfig() }

// LinearChain builds a validated linear chain Spec.
func LinearChain(name, tenant, service string, bandwidthGbps float64, flowBytes int64, nfs ...string) (Spec, error) {
	return chain.Linear(name, tenant, service, bandwidthGbps, flowBytes, nfs...)
}

// NFCatalog returns the names of the built-in network function types.
func NFCatalog() []string { return nfv.ProfileNames() }

// Option customizes an Architecture.
type Option func(*settings)

type settings struct {
	builder          cluster.Builder
	policy           placement.Policy
	mode             placement.Mode
	costModel        *optical.CostModel
	wavelengths      int
	batchWorkers     int
	standbyK         int
	optimizer        *optimizer.Options
	shards           int
	shardMode        orch.ShardMode
	debounceWindow   *time.Duration
	traceOpts        *trace.StoreOptions
	traceSet         bool
	disablePathCache bool
}

// WithBuilder selects the AL construction algorithm (default: the
// paper's max-weight builder).
func WithBuilder(b ALBuilder) Option {
	return func(s *settings) { s.builder = b }
}

// WithPolicy selects the VNF placement policy (default: the paper's
// optical-first greedy).
func WithPolicy(p PlacementPolicy) Option {
	return func(s *settings) { s.policy = p }
}

// WithPerRunAccounting switches O/E/O accounting from the paper's
// per-VNF convention to the colocation-aware per-run convention.
func WithPerRunAccounting() Option {
	return func(s *settings) { s.mode = placement.AccountPerRun }
}

// WithConversionCost overrides the O/E/O energy model.
func WithConversionCost(joulesPerBit, fixedJoules float64) Option {
	return func(s *settings) {
		s.costModel = &optical.CostModel{JoulesPerBit: joulesPerBit, FixedJoules: fixedJoules}
	}
}

// WithWavelengths enables per-flow WDM wavelength assignment with the
// given channels per optical link (first-fit, continuity-constrained;
// chains block when no common wavelength remains).
func WithWavelengths(n int) Option {
	return func(s *settings) { s.wavelengths = n }
}

// WithBatchWorkers sets the worker-pool size DeployBatch uses by
// default (0 means one worker per CPU). Servers tune this to bound how
// much parallel provisioning a single batch request may claim.
func WithBatchWorkers(n int) Option {
	return func(s *settings) { s.batchWorkers = n }
}

// WithStandbyK sets how many alternatives Yen's k-shortest explores per
// path segment when planning each chain's standby route at provision
// time (0 keeps the default; negative disables standby planning, so
// every data-path repair is a cold re-path — useful as a baseline).
func WithStandbyK(k int) Option {
	return func(s *settings) { s.standbyK = k }
}

// WithShards splits the orchestrator into n shards, each owning its
// own deployment map, reverse indexes, flow-key space, SDN flow tables
// and a disjoint partition of the OPS pool, behind a router that
// hashes the tenant (default, see WithShardMode) to pick a chain's
// shard. The topology, its routing snapshots, host capacity and
// wavelength occupancy stay shared. n <= 1 keeps the single-shard
// behavior. The topology must have at least n OPSs.
func WithShards(n int) Option {
	return func(s *settings) { s.shards = n }
}

// WithShardMode selects the shard-routing hash input: ShardByTenant
// (default) or ShardByChain. Only meaningful together with WithShards.
func WithShardMode(mode ShardMode) Option {
	return func(s *settings) { s.shardMode = mode }
}

// WithOptimizer attaches the background optimization engine: repairs
// stop replanning standbys inline (Yen's search leaves the recovery
// hot path; the engine re-protects chains asynchronously), recoveries
// trigger standby refresh and placement re-homing, and idle ticks
// consolidate fragmented wavelength assignments. The engine is wired
// as the orchestrator's event sink; drive it with
// Architecture.Optimize (synchronous drain) or Optimizer().Start (a
// daemon's background loop).
func WithOptimizer(opts OptimizerOptions) Option {
	return func(s *settings) { s.optimizer = &opts }
}

// WithTracing tunes or disables request-scoped tracing. Tracing is ON
// by default with default store bounds: every Deploy/Delete/repair
// records a span tree into a bounded in-memory store, queryable via
// Architecture.TraceStore (the server's GET /v1/traces). Pass non-nil
// options to resize the store; pass nil to disable tracing entirely —
// the hot paths then skip span bookkeeping with zero allocations.
func WithTracing(opts *TraceOptions) Option {
	return func(s *settings) { s.traceSet = true; s.traceOpts = opts }
}

// WithPathCandidateCache enables or disables the SDN controllers'
// generation-keyed path-candidate cache (default: enabled). The cache
// memoizes Yen k-shortest results per (structural generation,
// live-mask version, endpoints, k, pool digest), so repeated standby
// searches within one topology epoch — optimizer refresh fans,
// storm-group re-protection — skip the search entirely. Disable it
// only to measure its effect (the storm bench's per-chain baseline
// does).
func WithPathCandidateCache(enabled bool) Option {
	return func(s *settings) { s.disablePathCache = !enabled }
}

// WithFailureDebounce attaches a failure debouncer: failure events
// reported through ReportFailures coalesce for the given window and
// dispatch as one union FailBatch, so a failure storm (a cut tray, a
// rack PDU trip) repairs every affected chain exactly once instead of
// once per event. A non-positive window installs the debouncer in
// pass-through mode (useful to keep one code path and batch only via
// FlushFailures). When an optimizer is also attached, its status
// reports the debouncer's coalescing counters.
func WithFailureDebounce(window time.Duration) Option {
	return func(s *settings) { s.debounceWindow = &window }
}

// Architecture is a running AL-VC instance: a topology plus the full
// management stack of Fig. 6 (orchestrator over SDN controller and
// Cloud/NFV manager), optionally with the background optimization
// engine attached.
type Architecture struct {
	topo *topology.Topology
	// sh is the sharded orchestration layer every verb routes through;
	// with one shard (the default) it is a thin pass-through. orch and
	// alloc alias shard 0 for single-shard compatibility surfaces
	// (Orchestrator(), BuildServiceClusters).
	sh           *orch.Sharded
	alloc        *cluster.Allocator
	orch         *orch.Orchestrator
	opt          *optimizer.Engine
	events       *orch.EventMux
	debounce     *orch.FailureDebouncer
	tracer       *trace.Tracer
	batchWorkers int
}

// New generates a topology from the configuration and stands up the
// management stack on it.
func New(cfg TopologyConfig, opts ...Option) (*Architecture, error) {
	topo, err := topology.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("alvc: %w", err)
	}
	return FromTopology(topo, opts...)
}

// FromTopology stands the management stack up on an existing topology
// (which must pass Validate).
func FromTopology(topo *topology.Topology, opts ...Option) (*Architecture, error) {
	if topo == nil {
		return nil, fmt.Errorf("alvc: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("alvc: %w", err)
	}
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	sh, err := orch.NewSharded(orch.Config{
		Topo:             topo,
		Builder:          s.builder,
		Policy:           s.policy,
		Mode:             s.mode,
		CostModel:        s.costModel,
		Wavelengths:      s.wavelengths,
		StandbyK:         s.standbyK,
		DisablePathCache: s.disablePathCache,
	}, s.shards, s.shardMode)
	if err != nil {
		return nil, fmt.Errorf("alvc: %w", err)
	}
	arch := &Architecture{
		topo:         topo,
		sh:           sh,
		alloc:        sh.Shard(0).Allocator(),
		orch:         sh.Shard(0),
		batchWorkers: s.batchWorkers,
	}
	// Tracing is on by default (bounded store, default sizes); only an
	// explicit WithTracing(nil) turns it off. The one tracer is shared
	// by every shard, the debouncer and the optimizer, so spans from
	// all of them land in one store and one causal chain.
	traceOpts := &trace.StoreOptions{}
	if s.traceSet {
		traceOpts = s.traceOpts
	}
	if traceOpts != nil {
		arch.tracer = trace.NewTracer(trace.NewStore(*traceOpts))
		sh.SetTracer(arch.tracer)
	}
	// Every shard emits into one multiplexer rather than claiming the
	// orchestrator's single sink slot, so the optimizer, telemetry
	// bridges and other observers subscribe independently
	// (SubscribeEvents). The mux is always installed: event streaming
	// works with or without an optimizer.
	mux := orch.NewEventMux()
	sh.SetEventSink(mux)
	arch.events = mux
	if s.optimizer != nil {
		eng, err := optimizer.New(sh, *s.optimizer)
		if err != nil {
			return nil, fmt.Errorf("alvc: %w", err)
		}
		mux.Subscribe(eng)
		// Only with an engine draining repair events may repairs defer
		// standby replanning off the recovery hot path.
		sh.SetDeferReprotect(true)
		if arch.tracer != nil {
			eng.SetTracer(arch.tracer)
		}
		arch.opt = eng
	}
	if s.debounceWindow != nil {
		arch.debounce = orch.NewFailureDebouncer(sh, *s.debounceWindow)
		if arch.tracer != nil {
			arch.debounce.SetTracer(arch.tracer)
		}
		if arch.opt != nil {
			arch.opt.SetDebounceSource(arch.debounce)
		}
	}
	return arch, nil
}

// SubscribeEvents registers an additional orchestrator-event subscriber
// (a metrics exporter, an audit log) alongside the background
// optimizer, returning its cancel function. Subscribing is purely
// observational — it never changes repair semantics (deferred standby
// replanning is tied to WithOptimizer, not to subscription).
// Subscribers run synchronously per event and must return quickly
// (enqueue, don't execute). ok is always true; the pair form is kept
// for call-site compatibility.
func (a *Architecture) SubscribeEvents(s orch.EventSink) (cancel func(), ok bool) {
	return a.events.Subscribe(s), true
}

// Topology returns the underlying network.
func (a *Architecture) Topology() *Topology { return a.topo }

// Orchestrator returns the underlying NFC orchestrator for advanced
// inspection (flow tables, VNF lifecycle events, slices). Under
// WithShards this is shard 0; use Sharded for the routed fleet view.
func (a *Architecture) Orchestrator() *orch.Orchestrator { return a.orch }

// Sharded returns the sharded orchestration layer (one shard unless
// WithShards raised the count): routed per-deployment verbs, fleet
// merges and per-shard statistics.
func (a *Architecture) Sharded() *orch.Sharded { return a.sh }

// ShardCount returns the number of orchestrator shards (1 without
// WithShards).
func (a *Architecture) ShardCount() int { return a.sh.Shards() }

// ShardStats returns one statistics entry per shard, in shard order.
func (a *Architecture) ShardStats() []ShardStat { return a.sh.ShardStats() }

// BuildServiceClusters constructs one virtual cluster per service
// (paper §III, Fig. 1/3) — the pure clustering use of AL-VC, without
// chains. The clusters claim OPSs from the same pool chain deployments
// use (shard 0's partition when WithShards splits the pool).
func (a *Architecture) BuildServiceClusters() ([]*VC, error) {
	vcs, err := a.alloc.BuildAllByService()
	if err != nil {
		return nil, fmt.Errorf("alvc: %w", err)
	}
	return vcs, nil
}

// ReleaseCluster dissolves a cluster built by BuildServiceClusters.
func (a *Architecture) ReleaseCluster(id cluster.VCID) error {
	return a.alloc.Release(id)
}

// Clusters returns all current virtual clusters (service clusters and
// chain-backing clusters alike) across every shard's allocator. VC IDs
// are per-allocator, so entries from different shards may share an ID.
func (a *Architecture) Clusters() []*VC {
	var out []*VC
	for i := 0; i < a.sh.Shards(); i++ {
		out = append(out, a.sh.Shard(i).Allocator().VCs()...)
	}
	return out
}

// Deploy provisions a chain end to end (paper §IV): virtual cluster,
// optical slice, VNF placement and instantiation, SDN path.
func (a *Architecture) Deploy(spec Spec) (*Deployment, error) {
	return a.sh.Provision(spec)
}

// DeployCtx is Deploy carrying a request context: when the context
// holds a span (the server middleware's root HTTP span), the provision
// span and its per-stage children join that trace.
func (a *Architecture) DeployCtx(ctx context.Context, spec Spec) (*Deployment, error) {
	return a.sh.ProvisionCtx(ctx, spec)
}

// DeployBatch provisions independent chain specs concurrently over a
// bounded worker pool (the WithBatchWorkers size, or one worker per
// CPU) and returns one result per spec, in input order. Individual
// failures are rolled back and reported per item; they do not abort
// the batch.
func (a *Architecture) DeployBatch(specs []Spec) []BatchResult {
	return a.sh.ProvisionBatch(specs, a.batchWorkers)
}

// BatchWorkers returns the configured batch worker-pool size (0 means
// one worker per CPU).
func (a *Architecture) BatchWorkers() int { return a.batchWorkers }

// TopologyJSON serializes the topology consistently with respect to
// concurrent failure injection and repair.
func (a *Architecture) TopologyJSON() ([]byte, error) { return a.sh.TopologyJSON() }

// DeployRequest deploys a workload-generated chain request.
func (a *Architecture) DeployRequest(req ChainRequest) (*Deployment, error) {
	spec, err := LinearChain(req.Name, req.Tenant, req.Service, req.BandwidthGbps, req.FlowBytes, req.NFNames...)
	if err != nil {
		return nil, fmt.Errorf("alvc: deploy request: %w", err)
	}
	return a.Deploy(spec)
}

// Delete tears a deployment down and releases its resources.
func (a *Architecture) Delete(id DeploymentID) error { return a.sh.Delete(id) }

// DeleteCtx is Delete carrying a request context for trace propagation.
func (a *Architecture) DeleteCtx(ctx context.Context, id DeploymentID) error {
	return a.sh.DeleteCtx(ctx, id)
}

// Upgrade rolls every VNF of the chain to the next version.
func (a *Architecture) Upgrade(id DeploymentID) error { return a.sh.Upgrade(id) }

// Modify changes a deployment's bandwidth reservation.
func (a *Architecture) Modify(id DeploymentID, bandwidthGbps float64) error {
	return a.sh.Modify(id, bandwidthGbps)
}

// ScaleNF scales one NF of the chain to the given replica count.
func (a *Architecture) ScaleNF(id DeploymentID, nfIndex, replicas int) error {
	return a.sh.ScaleNF(id, nfIndex, replicas)
}

// FailNode injects a node failure (OPS, ToR or PM) and reconciles
// every chain that used it, preferring differential repairs (re-path,
// single-VNF replacement, AL/slice patch) over full rebuilds. It
// returns one RepairReport per affected chain; chains whose repair was
// impossible transition to the Failed state and are also reported
// through the error.
func (a *Architecture) FailNode(id NodeID) ([]RepairReport, error) {
	return a.sh.HandleNodeFailure(id)
}

// FailNodeCtx is FailNode carrying a request context: every repair it
// triggers records a span in the context's trace.
func (a *Architecture) FailNodeCtx(ctx context.Context, id NodeID) ([]RepairReport, error) {
	return a.sh.HandleNodeFailureCtx(ctx, id)
}

// RepairedIDs filters a FailNode report list down to the chains whose
// repair succeeded, preserving order.
func RepairedIDs(reports []RepairReport) []DeploymentID {
	return orch.RepairedIDs(reports)
}

// RecoverNode marks a failed node as live again. Existing deployments
// are not rebalanced; new deployments may use it immediately.
func (a *Architecture) RecoverNode(id NodeID) error {
	return a.sh.RecoverNode(id)
}

// FailLink injects a link failure and reconciles every chain whose
// primary or standby path crossed it: a dead primary link swaps to the
// standby when one survives (zero shortest-path runs), re-paths cold
// otherwise; a dead standby link merely replans the standby.
func (a *Architecture) FailLink(id LinkID) ([]RepairReport, error) {
	return a.sh.HandleLinkFailure(id)
}

// FailLinkCtx is FailLink carrying a request context for trace
// propagation.
func (a *Architecture) FailLinkCtx(ctx context.Context, id LinkID) ([]RepairReport, error) {
	return a.sh.HandleLinkFailureCtx(ctx, id)
}

// RecoverLink marks a failed link as live again. Existing deployments
// are not rerouted back; new paths may use it immediately.
func (a *Architecture) RecoverLink(id LinkID) error {
	return a.sh.RecoverLink(id)
}

// FailBatch injects a set of node and link failures as one event — a
// rack-scale incident — and reconciles each affected chain exactly
// once against the union of dead resources.
func (a *Architecture) FailBatch(nodes []NodeID, links []LinkID) ([]RepairReport, error) {
	return a.sh.HandleFailures(nodes, links)
}

// FailBatchCtx is FailBatch carrying a request context for trace
// propagation.
func (a *Architecture) FailBatchCtx(ctx context.Context, nodes []NodeID, links []LinkID) ([]RepairReport, error) {
	return a.sh.HandleFailuresCtx(ctx, nodes, links)
}

// ReportFailures feeds a failure notification into the debouncer
// (WithFailureDebounce): reports within one window coalesce into a
// single FailBatch. Without a debouncer it falls back to an immediate
// FailBatch, so callers can use one code path either way.
func (a *Architecture) ReportFailures(nodes []NodeID, links []LinkID) {
	a.ReportFailuresCtx(context.Background(), nodes, links)
}

// ReportFailuresCtx is ReportFailures carrying a request context: the
// debouncer remembers the context's span as a parent of the batch that
// eventually flushes the report, so the failure report's trace reaches
// the coalesced repairs.
func (a *Architecture) ReportFailuresCtx(ctx context.Context, nodes []NodeID, links []LinkID) {
	if a.debounce == nil {
		_, _ = a.sh.HandleFailuresCtx(ctx, nodes, links)
		return
	}
	a.debounce.ReportCtx(ctx, nodes, links)
}

// FlushFailures dispatches the debouncer's pending failure union
// immediately and returns the batch outcome (nil, nil when nothing is
// pending or no debouncer is attached).
func (a *Architecture) FlushFailures() ([]RepairReport, error) {
	if a.debounce == nil {
		return nil, nil
	}
	return a.debounce.Flush()
}

// FailureDebounceStats returns the debouncer's coalescing counters; ok
// is false when the architecture was built without WithFailureDebounce.
func (a *Architecture) FailureDebounceStats() (DebounceStats, bool) {
	if a.debounce == nil {
		return DebounceStats{}, false
	}
	return a.debounce.Stats(), true
}

// Debouncer returns the failure debouncer, or nil when the
// architecture was built without WithFailureDebounce.
func (a *Architecture) Debouncer() *FailureDebouncer { return a.debounce }

// NodeImpact returns the blast radius of a node: every active chain
// that would be affected if it died, with the roles the node plays
// (slice / host / path / standby), from the reverse index.
func (a *Architecture) NodeImpact(id NodeID) []ImpactEntry {
	return a.sh.NodeImpact(id)
}

// LinkImpact returns the blast radius of a link (roles: path /
// standby).
func (a *Architecture) LinkImpact(id LinkID) []ImpactEntry {
	return a.sh.LinkImpact(id)
}

// Repair rebuilds one deployment around the current topology state.
func (a *Architecture) Repair(id DeploymentID) error { return a.sh.Repair(id) }

// Tracer returns the request-scoped tracer, or nil when tracing was
// disabled with WithTracing(nil). A nil Tracer is safe to call.
func (a *Architecture) Tracer() *Tracer { return a.tracer }

// TraceStore returns the bounded in-memory trace store behind
// GET /v1/traces, or nil when tracing is disabled.
func (a *Architecture) TraceStore() *TraceStore {
	if a.tracer == nil {
		return nil
	}
	return a.tracer.Store()
}

// Optimizer returns the background optimization engine, or nil when
// the architecture was built without WithOptimizer.
func (a *Architecture) Optimizer() *Optimizer { return a.opt }

// OptimizerStatus snapshots the background optimizer's state; ok is
// false when no optimizer is attached.
func (a *Architecture) OptimizerStatus() (OptimizerStatus, bool) {
	if a.opt == nil {
		return OptimizerStatus{}, false
	}
	return a.opt.Status(), true
}

// Optimize drains the background optimizer's queue synchronously and
// returns the executed task results (nil when no optimizer is
// attached) — the in-process form of POST /v1/optimizer:run.
func (a *Architecture) Optimize() []OptimizerTaskResult {
	if a.opt == nil {
		return nil
	}
	return a.opt.Drain()
}

// Deployments lists all deployments.
func (a *Architecture) Deployments() []*Deployment { return a.sh.Deployments() }

// Deployment returns one deployment, or nil.
func (a *Architecture) Deployment(id DeploymentID) *Deployment { return a.sh.Deployment(id) }

// MeasureDeployment replays n representative flows of the deployment
// through the flow simulator and returns the measured aggregate
// (hops, O/E/O conversions, energy, latency).
func (a *Architecture) MeasureDeployment(id DeploymentID, n int) (FlowResult, error) {
	dep := a.sh.Deployment(id)
	if dep == nil {
		return FlowResult{}, fmt.Errorf("alvc: measure: unknown deployment %d", id)
	}
	if n <= 0 {
		return FlowResult{}, fmt.Errorf("alvc: measure: n must be positive, got %d", n)
	}
	// Per-visit VNF processing latency from the deployed instances'
	// catalog profiles, so measured latency includes middlebox time.
	cfg := flow.DefaultConfig()
	cfg.VNFDelayUs = make(map[NodeID]float64)
	for _, instID := range dep.Instances {
		inst := a.orch.Manager().Instance(instID)
		if inst == nil {
			continue
		}
		if p, err := nfv.ProfileByName(string(inst.Type)); err == nil {
			cfg.VNFDelayUs[inst.Host] += p.PerPacketMicros
		}
	}
	sim, err := flow.NewSimulator(a.topo, cfg)
	if err != nil {
		return FlowResult{}, fmt.Errorf("alvc: measure: %w", err)
	}
	specs := make([]flow.Spec, n)
	for i := range specs {
		specs[i] = flow.Spec{Path: dep.Path, Bytes: dep.Spec.FlowBytes}
	}
	res, err := sim.RunBatch(specs)
	if err != nil {
		return FlowResult{}, fmt.Errorf("alvc: measure: %w", err)
	}
	// Credit the flow-table counters like a switch would (OpenFlow
	// statistics): each replayed flow hits every rule on its path once.
	a.sh.ControllerOf(dep.ID).RecordHits(dep.FlowKey(), int64(n))
	return res, nil
}

// MoveNF migrates one NF of a deployed chain to another hosting-capable
// node and re-provisions connectivity — the "deploy VNFs when and where
// required" operation (§I), and the online form of Fig. 8's
// move-into-the-optical-domain optimization.
func (a *Architecture) MoveNF(id DeploymentID, nfIndex int, to NodeID) error {
	return a.sh.MoveNF(id, nfIndex, to)
}

// Summary condenses the architecture's state.
type Summary struct {
	PMs, VMs, ToRs, OPSs int
	OptoelectronicOPSs   int
	Services             int
	Clusters             int
	ActiveDeployments    int
	InstalledRules       int
	TotalConversions     int
	TotalEnergyJoules    float64
}

// Summarize returns the current Summary.
func (a *Architecture) Summarize() Summary {
	stats := a.topo.ComputeStats()
	s := Summary{
		PMs:                stats.PMs,
		VMs:                stats.VMs,
		ToRs:               stats.ToRs,
		OPSs:               stats.OPSs,
		OptoelectronicOPSs: stats.OptoelectronicOPSs,
		Services:           stats.Services,
		Clusters:           len(a.Clusters()),
		InstalledRules:     a.sh.RuleCount(),
	}
	for _, dep := range a.sh.Deployments() {
		if dep.State == orch.StateActive {
			s.ActiveDeployments++
			s.TotalConversions += dep.Conversions
			s.TotalEnergyJoules += dep.EnergyJoules
		}
	}
	return s
}
