// Command alvc is the umbrella CLI for the AL-VC architecture:
//
//	alvc clusters   build service-based virtual clusters and print ALs
//	alvc deploy     deploy generated chain requests end to end
//	alvc catalog    list the network function catalog
//	alvc exp        run the experiment harness (see also alvc-bench)
//
// Every subcommand takes -racks/-ops/-uplinks/-seed to shape the
// underlying generated data center.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/alvc/alvc"
	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/experiments"
	"github.com/alvc/alvc/internal/metrics"
	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/update"
	"github.com/alvc/alvc/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: alvc <command> [flags]

commands:
  clusters   build one virtual cluster per service and print each AL
  deploy     deploy generated chain requests and print the deployments
  catalog    list the built-in network function types
  churn      replay VM churn and compare AL-VC vs flat update costs
  exp        run experiments (all, or -exp E1..E14)
`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "clusters":
		return runClusters(rest)
	case "deploy":
		return runDeploy(rest)
	case "catalog":
		return runCatalog()
	case "churn":
		return runChurn(rest)
	case "exp":
		return runExp(rest)
	case "-h", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "alvc: unknown command %q\n", cmd)
		usage()
		return 2
	}
}

func topoFlags(fs *flag.FlagSet) *alvc.TopologyConfig {
	cfg := alvc.DefaultTopology()
	cfg.Racks = 8
	cfg.OPSCount = 24
	cfg.ToRUplinks = 16
	cfg.OPSChords = 2
	fs.IntVar(&cfg.Racks, "racks", cfg.Racks, "number of racks")
	fs.IntVar(&cfg.OPSCount, "ops", cfg.OPSCount, "optical switches")
	fs.IntVar(&cfg.ToRUplinks, "uplinks", cfg.ToRUplinks, "OPS uplinks per ToR")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	return &cfg
}

func runClusters(args []string) int {
	fs := flag.NewFlagSet("clusters", flag.ContinueOnError)
	cfg := topoFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	arch, err := alvc.New(*cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc clusters: %v\n", err)
		return 1
	}
	vcs, err := arch.BuildServiceClusters()
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc clusters: %v\n", err)
		return 1
	}
	tbl := metrics.NewTable("virtual clusters", "id", "service", "VMs", "selected ToRs", "AL size (OPSs)")
	for _, vc := range vcs {
		tbl.AddRow(fmt.Sprint(vc.ID), vc.Service, fmt.Sprint(len(vc.VMs)),
			fmt.Sprint(len(vc.AL.ToRs)), fmt.Sprint(vc.AL.Size()))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "alvc clusters: %v\n", err)
		return 1
	}
	return 0
}

func runDeploy(args []string) int {
	fs := flag.NewFlagSet("deploy", flag.ContinueOnError)
	cfg := topoFlags(fs)
	tenants := fs.Int("tenants", 3, "number of tenants")
	perTenant := fs.Int("chains", 1, "chains per tenant")
	fromFile := fs.String("f", "", "deploy chain specs from a JSON file instead of generating them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg.Services = workload.ServiceNames(workload.DefaultCatalog())
	arch, err := alvc.New(*cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
		return 1
	}
	var specs []alvc.Spec
	if *fromFile != "" {
		data, err := os.ReadFile(*fromFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
			return 1
		}
		specs, err = chain.ParseSpecs(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
			return 1
		}
	} else {
		reqCfg := workload.DefaultRequestConfig()
		reqCfg.Tenants = *tenants
		reqCfg.ChainsPerTenant = *perTenant
		reqs, err := workload.GenerateRequests(reqCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
			return 1
		}
		for _, req := range reqs {
			spec, err := alvc.LinearChain(req.Name, req.Tenant, req.Service,
				req.BandwidthGbps, req.FlowBytes, req.NFNames...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
				return 1
			}
			specs = append(specs, spec)
		}
	}
	tbl := metrics.NewTable("deployments",
		"chain", "tenant", "service", "NFs", "AL", "hops", "conversions", "energy J")
	failures := 0
	for _, spec := range specs {
		dep, err := arch.Deploy(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvc deploy: %s: %v\n", spec.Name, err)
			failures++
			continue
		}
		tbl.AddRow(spec.Name, spec.Tenant, spec.Service, fmt.Sprint(len(spec.NFs)),
			fmt.Sprint(dep.VC.AL.Size()), fmt.Sprint(len(dep.Path)-1),
			fmt.Sprint(dep.Conversions), fmt.Sprintf("%.4f", dep.EnergyJoules))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "alvc deploy: %v\n", err)
		return 1
	}
	s := arch.Summarize()
	fmt.Printf("\nactive deployments: %d  installed rules: %d  total conversions: %d\n",
		s.ActiveDeployments, s.InstalledRules, s.TotalConversions)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "alvc deploy: %d requests failed (OPS pool exhausted?)\n", failures)
		return 1
	}
	return 0
}

func runCatalog() int {
	tbl := metrics.NewTable("network function catalog", "name")
	for _, name := range alvc.NFCatalog() {
		tbl.AddRow(name)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return 1
	}
	return 0
}

func runChurn(args []string) int {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	cfg := topoFlags(fs)
	events := fs.Int("events", 50, "churn events to replay")
	service := fs.String("service", "web", "service group to churn")
	joins := fs.Float64("joins", 0.35, "fraction of joins")
	leaves := fs.Float64("leaves", 0.3, "fraction of leaves (rest migrate)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	topoCfg := topology.DefaultGenConfig()
	topoCfg.Racks = cfg.Racks
	topoCfg.OPSCount = cfg.OPSCount
	topoCfg.ToRUplinks = cfg.ToRUplinks
	topoCfg.Seed = cfg.Seed
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc churn: %v\n", err)
		return 1
	}
	model, err := update.NewModel(topo, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc churn: %v\n", err)
		return 1
	}
	report, err := model.RunChurn(update.ChurnConfig{
		Events:    *events,
		Service:   *service,
		JoinFrac:  *joins,
		LeaveFrac: *leaves,
		Seed:      cfg.Seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "alvc churn: %v\n", err)
		return 1
	}
	tbl := metrics.NewTable(fmt.Sprintf("churn: %d events on service %q", report.Events, *service),
		"strategy", "switches touched", "rules changed")
	tbl.AddRow("AL-VC (scoped)", fmt.Sprint(report.ALVC.SwitchesTouched), fmt.Sprint(report.ALVC.RulesChanged))
	tbl.AddRow("flat (whole network)", fmt.Sprint(report.Flat.SwitchesTouched), fmt.Sprint(report.Flat.RulesChanged))
	if err := tbl.Render(os.Stdout); err != nil {
		return 1
	}
	fmt.Printf("\nAL rebuilds: %d  final AL size: %d  advantage: %.1fx fewer switches\n",
		report.Rebuilds, report.FinalSize,
		float64(report.Flat.SwitchesTouched)/float64(report.ALVC.SwitchesTouched))
	return 0
}

func runExp(args []string) int {
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment ID (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alvc exp: %v\n", err)
			return 1
		}
		fmt.Printf("=== %s — %s\n", res.ID, res.Title)
		for _, tbl := range res.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return 1
			}
			fmt.Println()
		}
	}
	return 0
}
