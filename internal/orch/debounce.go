// Failure-event debouncing: a failure storm — a tray cut, a rack PDU
// trip, a melted conduit — arrives at the control plane as a burst of
// per-resource notifications spread over milliseconds. Handling each
// one alone repairs the same chains repeatedly (swap on the first dead
// link, re-path on the second) and pays one reconciliation fan-out per
// event. The FailureDebouncer coalesces the burst: reports within one
// window merge into a union failure set and dispatch as a single
// HandleFailures batch, so every affected chain is classified against
// the whole storm at once and repaired exactly once.
package orch

import (
	"sort"
	"sync"
	"time"

	"github.com/alvc/alvc/internal/topology"
)

// FailureHandler is the reconciliation entry point the debouncer
// drives. Orchestrator and Sharded both satisfy it.
type FailureHandler interface {
	HandleFailures(nodes []topology.NodeID, links []topology.LinkID) ([]RepairReport, error)
}

// DebounceStats counts the debouncer's coalescing work.
type DebounceStats struct {
	// Events is the number of Report calls received.
	Events uint64 `json:"events"`
	// Batches is the number of HandleFailures dispatches — flushes
	// that actually carried a non-empty union.
	Batches uint64 `json:"batches"`
	// Coalesced is the number of reports that merged into an
	// already-armed window instead of opening a new one: the repairs
	// the debounce saved.
	Coalesced uint64 `json:"coalesced"`
}

// FailureDebouncer coalesces failure reports into batched
// HandleFailures calls. Reports arriving within one window merge into
// a pending union of dead nodes and links; when the window expires (or
// Flush is called) the union dispatches as one batch. Safe for
// concurrent use.
type FailureDebouncer struct {
	h      FailureHandler
	window time.Duration

	mu      sync.Mutex
	nodes   map[topology.NodeID]struct{}
	links   map[topology.LinkID]struct{}
	timer   *time.Timer
	stats   DebounceStats
	onBatch func([]RepairReport, error)
	onFlush func(d time.Duration, reports int)
}

// NewFailureDebouncer wraps a failure handler with a coalescing window.
// A non-positive window disables coalescing: every Report dispatches
// synchronously (still through the batch path, still counted).
func NewFailureDebouncer(h FailureHandler, window time.Duration) *FailureDebouncer {
	return &FailureDebouncer{
		h:      h,
		window: window,
		nodes:  make(map[topology.NodeID]struct{}),
		links:  make(map[topology.LinkID]struct{}),
	}
}

// SetOnBatch registers a callback receiving each dispatched batch's
// reports and error. Timer-expiry flushes run it on the timer
// goroutine; synchronous flushes run it inline. Must be set before the
// first Report.
func (d *FailureDebouncer) SetOnBatch(fn func([]RepairReport, error)) {
	d.mu.Lock()
	d.onBatch = fn
	d.mu.Unlock()
}

// SetFlushObserver registers a telemetry hook receiving each dispatched
// batch's reconciliation latency (the HandleFailures wall time) and
// report count. Record-only: the observer must not call back into the
// debouncer.
func (d *FailureDebouncer) SetFlushObserver(fn func(d time.Duration, reports int)) {
	d.mu.Lock()
	d.onFlush = fn
	d.mu.Unlock()
}

// Report merges a failure notification into the pending window. The
// first report of a quiet period arms the window timer; later reports
// within the window coalesce into it. With a non-positive window the
// union (just this report) dispatches before Report returns.
func (d *FailureDebouncer) Report(nodes []topology.NodeID, links []topology.LinkID) {
	if len(nodes) == 0 && len(links) == 0 {
		return
	}
	d.mu.Lock()
	d.stats.Events++
	for _, n := range nodes {
		d.nodes[n] = struct{}{}
	}
	for _, l := range links {
		d.links[l] = struct{}{}
	}
	if d.window <= 0 {
		d.mu.Unlock()
		d.Flush()
		return
	}
	if d.timer == nil {
		d.timer = time.AfterFunc(d.window, func() { d.Flush() })
	} else {
		d.stats.Coalesced++
	}
	d.mu.Unlock()
}

// Flush dispatches the pending union immediately as one HandleFailures
// batch, cancelling the armed window, and returns the batch outcome. A
// flush with nothing pending is a no-op returning (nil, nil). Exactly
// one flusher dispatches any given union: a timer expiry racing an
// explicit Flush finds the pending sets already drained.
func (d *FailureDebouncer) Flush() ([]RepairReport, error) {
	d.mu.Lock()
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	if len(d.nodes) == 0 && len(d.links) == 0 {
		d.mu.Unlock()
		return nil, nil
	}
	nodes := make([]topology.NodeID, 0, len(d.nodes))
	for n := range d.nodes {
		nodes = append(nodes, n)
	}
	links := make([]topology.LinkID, 0, len(d.links))
	for l := range d.links {
		links = append(links, l)
	}
	d.nodes = make(map[topology.NodeID]struct{})
	d.links = make(map[topology.LinkID]struct{})
	d.stats.Batches++
	onBatch := d.onBatch
	onFlush := d.onFlush
	d.mu.Unlock()

	// Deterministic dispatch order (map iteration is not).
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	start := time.Now()
	reports, err := d.h.HandleFailures(nodes, links)
	if onFlush != nil {
		onFlush(time.Since(start), len(reports))
	}
	if onBatch != nil {
		onBatch(reports, err)
	}
	return reports, err
}

// Pending returns the sizes of the pending union (nodes, links).
func (d *FailureDebouncer) Pending() (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.nodes), len(d.links)
}

// Stats returns a snapshot of the coalescing counters.
func (d *FailureDebouncer) Stats() DebounceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
