package nfv

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/alvc/alvc/internal/topology"
)

// ErrInsufficientCapacity is wrapped when a hosting node cannot fit a
// requested allocation. Callers (the HTTP control plane in particular)
// use it to distinguish capacity exhaustion from malformed requests.
var ErrInsufficientCapacity = errors.New("nfv: insufficient capacity")

// Ledger tracks resource allocation on hosting-capable nodes: physical
// machines (electronic domain) and optoelectronic routers (optical
// domain). The limited capacity of optoelectronic routers is the
// constraint that keeps high-demand VNFs in the electronic domain
// (§IV-D). Safe for concurrent use.
type Ledger struct {
	mu       sync.Mutex
	capacity map[topology.NodeID]topology.Resources
	used     map[topology.NodeID]topology.Resources
	domain   map[topology.NodeID]topology.Domain
}

// NewLedger indexes the topology's hosting-capable nodes: every PM and
// every optoelectronic OPS.
func NewLedger(topo *topology.Topology) (*Ledger, error) {
	if topo == nil {
		return nil, fmt.Errorf("nfv: ledger: nil topology")
	}
	l := &Ledger{
		capacity: make(map[topology.NodeID]topology.Resources),
		used:     make(map[topology.NodeID]topology.Resources),
		domain:   make(map[topology.NodeID]topology.Domain),
	}
	for _, n := range topo.Nodes(topology.KindPhysicalMachine) {
		l.capacity[n.ID] = n.Capacity
		l.domain[n.ID] = topology.DomainElectronic
	}
	for _, n := range topo.Nodes(topology.KindOPS) {
		if n.Optoelectronic {
			l.capacity[n.ID] = n.Capacity
			l.domain[n.ID] = topology.DomainOptical
		}
	}
	return l, nil
}

// CanHost reports whether node id has enough free capacity for demand.
func (l *Ledger) CanHost(id topology.NodeID, demand topology.Resources) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	cap, ok := l.capacity[id]
	if !ok {
		return false
	}
	return cap.Sub(l.used[id]).Fits(demand)
}

// Alloc reserves demand on node id.
func (l *Ledger) Alloc(id topology.NodeID, demand topology.Resources) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	cap, ok := l.capacity[id]
	if !ok {
		return fmt.Errorf("nfv: alloc: node %d cannot host VNFs", id)
	}
	if !cap.Sub(l.used[id]).Fits(demand) {
		return fmt.Errorf("%w: node %d lacks room for %s (free %s)",
			ErrInsufficientCapacity, id, demand, cap.Sub(l.used[id]))
	}
	l.used[id] = l.used[id].Add(demand)
	return nil
}

// Free releases demand on node id. Releasing more than allocated is an
// error (the ledger clamps nothing — it signals the accounting bug).
func (l *Ledger) Free(id topology.NodeID, demand topology.Resources) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.capacity[id]; !ok {
		return fmt.Errorf("nfv: free: node %d cannot host VNFs", id)
	}
	rem := l.used[id].Sub(demand)
	if rem.CPUCores < -1e-9 || rem.MemoryGB < -1e-9 || rem.StorageGB < -1e-9 {
		return fmt.Errorf("nfv: free: node %d releasing %s exceeds used %s", id, demand, l.used[id])
	}
	l.used[id] = rem
	return nil
}

// Available returns the free capacity of node id (zero if it cannot
// host).
func (l *Ledger) Available(id topology.NodeID) topology.Resources {
	l.mu.Lock()
	defer l.mu.Unlock()
	cap, ok := l.capacity[id]
	if !ok {
		return topology.Resources{}
	}
	return cap.Sub(l.used[id])
}

// Capacity returns the total capacity of node id.
func (l *Ledger) Capacity(id topology.NodeID) (topology.Resources, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cap, ok := l.capacity[id]
	return cap, ok
}

// Used returns the allocated resources on node id.
func (l *Ledger) Used(id topology.NodeID) topology.Resources {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used[id]
}

// Domain returns the domain of a hosting-capable node.
func (l *Ledger) Domain(id topology.NodeID) (topology.Domain, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d, ok := l.domain[id]
	return d, ok
}

// HostsInDomain returns the hosting-capable nodes of the given domain,
// sorted by ID.
func (l *Ledger) HostsInDomain(d topology.Domain) []topology.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []topology.NodeID
	for id, dom := range l.domain {
		if dom == d {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
