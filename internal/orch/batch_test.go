package orch

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/topology"
)

// wideTopology generates a data center able to host many concurrent
// chains: every ToR sees every OPS so each AL collapses to one OPS
// (the pool then supports up to opsCount disjoint chains), and PM
// capacity is raised so VNF hosting never bottlenecks.
func wideTopology(t testing.TB, opsCount int) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultGenConfig()
	cfg.Racks = 4
	cfg.PMsPerRack = 2
	cfg.VMsPerPM = 2
	cfg.OPSCount = opsCount
	cfg.ToRUplinks = opsCount
	cfg.OPSChords = 0
	cfg.Services = []string{"web"}
	cfg.PMCapacity = topology.Resources{CPUCores: 1 << 20, MemoryGB: 1 << 20, StorageGB: 1 << 20}
	topo, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return topo
}

func batchSpecs(t testing.TB, n int) []chain.Spec {
	t.Helper()
	specs := make([]chain.Spec, n)
	for i := range specs {
		spec, err := chain.Linear(fmt.Sprintf("chain-%d", i), fmt.Sprintf("tenant-%d", i%10),
			"web", 1.0, 1<<20, "firewall", "nat")
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		specs[i] = spec
	}
	return specs
}

func newWideOrch(t testing.TB, opsCount int) *Orchestrator {
	t.Helper()
	o, err := New(Config{Topo: wideTopology(t, opsCount)})
	if err != nil {
		t.Fatalf("orch.New: %v", err)
	}
	return o
}

// TestProvisionBatch100 is the acceptance scenario: 100 independent
// specs through the bounded pool, all provisioned, invariants intact.
// Run under -race this also proves the provisioning pipeline's
// concurrency safety.
func TestProvisionBatch100(t *testing.T) {
	o := newWideOrch(t, 128)
	specs := batchSpecs(t, 100)
	results := o.ProvisionBatch(specs, 0)
	if len(results) != 100 {
		t.Fatalf("got %d results, want 100", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("spec %d failed: %v", i, res.Err)
		}
		if res.Index != i || res.Deployment == nil {
			t.Fatalf("result %d malformed: %+v", i, res)
		}
		if res.Deployment.Spec.Name != specs[i].Name {
			t.Fatalf("result %d is deployment %q, want %q", i, res.Deployment.Spec.Name, specs[i].Name)
		}
	}
	if n := o.ActiveCount(); n != 100 {
		t.Fatalf("active count %d, want 100", n)
	}
	if !o.Allocator().Disjoint() {
		t.Fatal("ALs not disjoint after batch")
	}
	// Every deployment got its own flow rules.
	for _, res := range results {
		if len(o.Controller().RulesForFlow(res.Deployment.FlowKey())) == 0 {
			t.Fatalf("no flow rules for %s", res.Deployment.FlowKey())
		}
	}
}

func TestProvisionBatchPartialFailure(t *testing.T) {
	// Pool of 8 OPSs: some of 20 specs must fail with capacity errors,
	// and the failures must not corrupt the successes.
	o := newWideOrch(t, 8)
	results := o.ProvisionBatch(batchSpecs(t, 20), 4)
	ok, failed := 0, 0
	for _, res := range results {
		if res.Err != nil {
			failed++
		} else {
			ok++
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("expected a mix of outcomes over a tight pool, got %d ok / %d failed", ok, failed)
	}
	if got := o.ActiveCount(); got != ok {
		t.Fatalf("active count %d != successful results %d", got, ok)
	}
	if !o.Allocator().Disjoint() {
		t.Fatal("ALs not disjoint after partial failure")
	}
}

func TestProvisionBatchDuplicateFlowKeys(t *testing.T) {
	o := newWideOrch(t, 16)
	specs := batchSpecs(t, 3)
	specs[2].Name = specs[0].Name
	specs[2].Tenant = specs[0].Tenant
	results := o.ProvisionBatch(specs, 2)
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("unique specs failed: %v / %v", results[0].Err, results[1].Err)
	}
	if results[2].Err == nil {
		t.Fatal("duplicate flow key accepted")
	}
	if o.ActiveCount() != 2 {
		t.Fatalf("active count %d, want 2", o.ActiveCount())
	}
}

// TestConcurrentDeleteVsRepairExclusive drives Delete and Repair at
// the same deployment from many goroutines: the exclusive-operation
// guard must prevent double teardown, and the terminal state must be
// exactly one of deleted (with resources released) or active.
func TestConcurrentDeleteVsRepairExclusive(t *testing.T) {
	for round := 0; round < 5; round++ {
		o := newWideOrch(t, 16)
		dep, err := o.Provision(batchSpecs(t, 1)[0])
		if err != nil {
			t.Fatalf("provision: %v", err)
		}
		done := make(chan error, 2)
		go func() { done <- o.Delete(dep.ID) }()
		go func() { done <- o.Repair(dep.ID) }()
		<-done
		<-done
		got := o.Deployment(dep.ID)
		switch got.State {
		case StateDeleted:
			if o.Allocator().VC(got.VC.ID) != nil {
				t.Fatalf("deleted deployment still owns VC %d", got.VC.ID)
			}
		case StateActive:
			// Repair won and Delete was rejected as busy — fine.
		default:
			t.Fatalf("unexpected terminal state %s", got.State)
		}
		if !o.Allocator().Disjoint() {
			t.Fatal("ALs not disjoint after delete/repair race")
		}
	}
}

// TestDuplicateFlowKeyAcrossCalls ensures the flow-key reservation
// spans separate Provision calls, not just one batch.
func TestDuplicateFlowKeyAcrossCalls(t *testing.T) {
	o := newWideOrch(t, 16)
	spec := batchSpecs(t, 1)[0]
	first, err := o.Provision(spec)
	if err != nil {
		t.Fatalf("first provision: %v", err)
	}
	if _, err := o.Provision(spec); !errors.Is(err, ErrDuplicateChain) {
		t.Fatalf("second provision: got %v, want ErrDuplicateChain", err)
	}
	if err := o.Delete(first.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := o.Provision(spec); err != nil {
		t.Fatalf("re-provision after delete: %v", err)
	}
}

func TestProvisionBatchEmpty(t *testing.T) {
	o := newWideOrch(t, 4)
	if got := o.ProvisionBatch(nil, 8); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// TestProvisionBatchFasterThanSequential asserts the point of the
// worker pool: a batch of 100 provisions completes in strictly less
// wall-clock time than the same 100 provisions issued one at a time.
func TestProvisionBatchFasterThanSequential(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 CPU for parallel speedup")
	}
	specs := batchSpecs(t, 100)
	// Best-of-3 per mode damps scheduler noise without weakening the
	// strict inequality the batch path must win.
	seq, par := time.Duration(1<<62), time.Duration(1<<62)
	for attempt := 0; attempt < 3; attempt++ {
		o := newWideOrch(t, 128)
		start := time.Now()
		for _, spec := range specs {
			if _, err := o.Provision(spec); err != nil {
				t.Fatalf("sequential provision: %v", err)
			}
		}
		if d := time.Since(start); d < seq {
			seq = d
		}

		o = newWideOrch(t, 128)
		start = time.Now()
		for _, res := range o.ProvisionBatch(specs, 0) {
			if res.Err != nil {
				t.Fatalf("batch provision: %v", res.Err)
			}
		}
		if d := time.Since(start); d < par {
			par = d
		}
	}
	t.Logf("sequential: %v, batch: %v (%.2fx)", seq, par, float64(seq)/float64(par))
	if par >= seq {
		t.Fatalf("batch (%v) not faster than sequential (%v)", par, seq)
	}
}

func BenchmarkProvisionSequential100(b *testing.B) {
	specs := batchSpecs(b, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := newWideOrch(b, 128)
		b.StartTimer()
		for _, spec := range specs {
			if _, err := o.Provision(spec); err != nil {
				b.Fatalf("provision: %v", err)
			}
		}
	}
}

func BenchmarkProvisionBatch100(b *testing.B) {
	specs := batchSpecs(b, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := newWideOrch(b, 128)
		b.StartTimer()
		for _, res := range o.ProvisionBatch(specs, 0) {
			if res.Err != nil {
				b.Fatalf("batch: %v", res.Err)
			}
		}
	}
}
