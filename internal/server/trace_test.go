package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/alvc/alvc"
)

// doTraced issues one request with an X-Trace-Id header and returns
// the status, body, and the echoed X-Trace-Id response header.
func doTraced(t *testing.T, method, url, traceID string, body []byte) (int, []byte, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("NewRequest %s %s: %v", method, url, err)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Trace-Id")
}

// findSpan walks a span tree depth-first for the first span with the
// given name.
func findSpan(roots []*SpanJSON, name string) *SpanJSON {
	for _, n := range roots {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestTraceEndpointsEndToEnd is the CI acceptance path over httptest:
// a provision pinned to an explicit X-Trace-Id comes back as a queryable
// span tree with every pipeline stage, and a failure injection's repair
// span shares the failure request's trace.
func TestTraceEndpointsEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t, alvc.WithPolicy(alvc.AllElectronic{}))

	status, body, echoed := doTraced(t, "POST", ts.URL+"/v1/chains", "ci-prov-1",
		specBody("c1", "t1", "web", "firewall", "lb"))
	if status != http.StatusCreated {
		t.Fatalf("provision: got %d (%s)", status, body)
	}
	if echoed != "ci-prov-1" {
		t.Fatalf("X-Trace-Id echoed %q, want ci-prov-1", echoed)
	}
	dep := mustUnmarshal[DeploymentJSON](t, body)

	status, body, _ = doTraced(t, "GET", ts.URL+"/v1/traces/ci-prov-1", "", nil)
	if status != http.StatusOK {
		t.Fatalf("get trace: got %d (%s)", status, body)
	}
	tj := mustUnmarshal[TraceJSON](t, body)
	root := findSpan(tj.Roots, "POST /v1/chains")
	if root == nil || root.Kind != "http" {
		t.Fatalf("no http root span in %s", body)
	}
	prov := findSpan(root.Children, "provision")
	if prov == nil || prov.Chain != dep.ID {
		t.Fatalf("no provision span for deployment %d under the http root: %s", dep.ID, body)
	}
	for _, stage := range []string{"cluster", "slice", "placement", "instantiate", "path", "standby", "wdm", "rules"} {
		if sp := findSpan(prov.Children, stage); sp == nil || sp.Kind != "stage" {
			t.Fatalf("missing stage span %q under provision: %s", stage, body)
		}
	}

	// Failure injection on its own pinned trace: the synchronous repair
	// span must land inside it, causally under the http root.
	victim := dep.SliceOPSs[0]
	status, body, _ = doTraced(t, "POST", fmt.Sprintf("%s/v1/failures/%d", ts.URL, victim), "ci-fail-1", nil)
	if status != http.StatusOK {
		t.Fatalf("fail node: got %d (%s)", status, body)
	}
	fr := mustUnmarshal[FailureResponse](t, body)
	if len(fr.Reports) != 1 || fr.Reports[0].TraceID != "ci-fail-1" {
		t.Fatalf("reports = %+v, want one report on trace ci-fail-1", fr.Reports)
	}

	status, body, _ = doTraced(t, "GET", ts.URL+"/v1/traces/ci-fail-1", "", nil)
	if status != http.StatusOK {
		t.Fatalf("get repair trace: got %d (%s)", status, body)
	}
	tj = mustUnmarshal[TraceJSON](t, body)
	failRoot := findSpan(tj.Roots, fmt.Sprintf("POST /v1/failures/%d", victim))
	if failRoot == nil {
		t.Fatalf("no http root for the failure request: %s", body)
	}
	repair := findSpan(failRoot.Children, "repair")
	if repair == nil || repair.Kind != "repair" || repair.Chain != dep.ID {
		t.Fatalf("no repair span for deployment %d in the failure trace: %s", dep.ID, body)
	}

	// The listing filters by kind, and the chain index ties both traces
	// to the deployment.
	status, body, _ = doTraced(t, "GET", ts.URL+"/v1/traces?kind=http", "", nil)
	if status != http.StatusOK {
		t.Fatalf("list traces: got %d (%s)", status, body)
	}
	sums := mustUnmarshal[[]TraceSummaryJSON](t, body)
	seen := map[string]bool{}
	for _, s := range sums {
		seen[s.ID] = true
	}
	if !seen["ci-prov-1"] || !seen["ci-fail-1"] {
		t.Fatalf("kind=http listing %v missing the pinned traces", seen)
	}

	status, body, _ = doTraced(t, "GET", fmt.Sprintf("%s/v1/chains/%d/traces", ts.URL, dep.ID), "", nil)
	if status != http.StatusOK {
		t.Fatalf("chain traces: got %d (%s)", status, body)
	}
	sums = mustUnmarshal[[]TraceSummaryJSON](t, body)
	seen = map[string]bool{}
	for _, s := range sums {
		seen[s.ID] = true
	}
	if !seen["ci-prov-1"] || !seen["ci-fail-1"] {
		t.Fatalf("chain %d traces %v missing provision/repair traces", dep.ID, seen)
	}
}

// TestTraceEndpointValidation: unknown IDs 404, bad filters 400, and
// the untraced endpoints never pollute the store.
func TestTraceEndpointValidation(t *testing.T) {
	ts, arch := newTestServer(t)
	status, _, _ := doTraced(t, "GET", ts.URL+"/v1/traces/no-such-trace", "", nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown trace: got %d, want 404", status)
	}
	status, _, _ = doTraced(t, "GET", ts.URL+"/v1/traces?min_duration=bogus", "", nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad min_duration: got %d, want 400", status)
	}

	before := arch.TraceStore().Stats().SpansRecorded
	for _, path := range []string{"/healthz", "/metrics", "/v1/traces"} {
		if status, _, echoed := doTraced(t, "GET", ts.URL+path, "probe-1", nil); status != http.StatusOK || echoed != "" {
			t.Fatalf("GET %s: status %d, echoed trace %q — want untraced 200", path, status, echoed)
		}
	}
	if after := arch.TraceStore().Stats().SpansRecorded; after != before {
		t.Fatalf("untraced endpoints recorded %d spans", after-before)
	}
}

// lockedBuffer serializes writes so the slog handler is safe under
// concurrent requests.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogCarriesTraceID: the structured request log line for a
// traced request includes its trace_id, so log lines pivot straight
// into GET /v1/traces/{id}.
func TestRequestLogCarriesTraceID(t *testing.T) {
	cfg := alvc.DefaultTopology()
	cfg.Racks = 4
	arch, err := alvc.New(cfg)
	if err != nil {
		t.Fatalf("alvc.New: %v", err)
	}
	var buf lockedBuffer
	srv, err := New(arch, WithLogger(slog.New(slog.NewJSONHandler(&buf, nil))))
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, body, _ := doTraced(t, "POST", ts.URL+"/v1/chains", "log-trace-1",
		specBody("c1", "t1", "web", "firewall"))
	if status != http.StatusCreated {
		t.Fatalf("provision: got %d (%s)", status, body)
	}
	var logged bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Msg     string `json:"msg"`
			Path    string `json:"path"`
			Status  int    `json:"status"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if rec.Msg == "request" && rec.Path == "/v1/chains" {
			if rec.TraceID != "log-trace-1" || rec.Status != http.StatusCreated {
				t.Fatalf("request log = %+v, want trace_id log-trace-1 status 201", rec)
			}
			logged = true
		}
	}
	if !logged {
		t.Fatalf("no request log line for /v1/chains in %q", buf.String())
	}
}

// TestTracingDisabled: WithTracing(nil) removes the trace surface —
// 404 on the query API, no X-Trace-Id echo, nil store — while the
// request paths keep working.
func TestTracingDisabled(t *testing.T) {
	ts, arch := newTestServer(t, alvc.WithTracing(nil))
	if arch.Tracer() != nil || arch.TraceStore() != nil {
		t.Fatal("WithTracing(nil) left a tracer attached")
	}
	status, body, echoed := doTraced(t, "POST", ts.URL+"/v1/chains", "untraced-1",
		specBody("c1", "t1", "web", "firewall"))
	if status != http.StatusCreated {
		t.Fatalf("provision without tracing: got %d (%s)", status, body)
	}
	if echoed != "" {
		t.Fatalf("X-Trace-Id echoed %q with tracing disabled", echoed)
	}
	status, _, _ = doTraced(t, "GET", ts.URL+"/v1/traces", "", nil)
	if status != http.StatusNotFound {
		t.Fatalf("trace listing with tracing disabled: got %d, want 404", status)
	}
}
