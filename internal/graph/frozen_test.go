package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// randomWeightedGraph builds a deterministic pseudo-random
// connected-ish graph
// with integer-ish weights (to provoke equal-weight ties) and some
// parallel edges.
func randomWeightedGraph(t testing.TB, seed int64, n, extra int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(false)
	for v := 1; v <= n; v++ {
		g.AddVertex(VertexID(v))
	}
	// Spanning chain keeps most vertex pairs connected.
	for v := 1; v < n; v++ {
		if err := g.AddEdge(VertexID(v), VertexID(v+1), float64(1+rng.Intn(4))); err != nil {
			t.Fatalf("chain edge: %v", err)
		}
	}
	for i := 0; i < extra; i++ {
		u := VertexID(1 + rng.Intn(n))
		v := VertexID(1 + rng.Intn(n))
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, float64(1+rng.Intn(4))); err != nil {
			t.Fatalf("extra edge: %v", err)
		}
	}
	return g
}

func pathsEqual(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFrozenShortestPathGolden asserts byte-identical shortest paths
// between the map-based and CSR implementations across many random
// graphs and endpoint pairs, including tie-heavy unit-weight graphs.
func TestFrozenShortestPathGolden(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomWeightedGraph(t, seed, 40, 120)
		f := g.Frozen()
		rng := rand.New(rand.NewSource(seed * 101))
		for trial := 0; trial < 50; trial++ {
			src := VertexID(1 + rng.Intn(40))
			dst := VertexID(1 + rng.Intn(40))
			wantPath, wantW, wantErr := g.ShortestPath(src, dst)
			gotPath, gotW, gotErr := f.ShortestPath(src, dst)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %d->%d: error mismatch map=%v frozen=%v", seed, src, dst, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !pathsEqual(wantPath, gotPath) || wantW != gotW {
				t.Fatalf("seed %d %d->%d: map %v (%g) vs frozen %v (%g)",
					seed, src, dst, wantPath, wantW, gotPath, gotW)
			}
		}
	}
}

// TestFrozenFilteredEqualsSubgraph asserts that a filtered frozen
// search equals a cold search over the induced subgraph — the exact
// contract the topology snapshot cache relies on for RestrictOPS.
func TestFrozenFilteredEqualsSubgraph(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomWeightedGraph(t, seed, 30, 90)
		f := g.Frozen()
		rng := rand.New(rand.NewSource(seed * 77))
		for trial := 0; trial < 30; trial++ {
			keep := make(map[VertexID]bool)
			for v := 1; v <= 30; v++ {
				if rng.Float64() < 0.7 {
					keep[VertexID(v)] = true
				}
			}
			sub := g.Subgraph(keep)
			filter := func(v VertexID) bool { return keep[v] }
			src := VertexID(1 + rng.Intn(30))
			dst := VertexID(1 + rng.Intn(30))
			if !keep[src] || !keep[dst] {
				if _, _, err := f.ShortestPathFiltered(src, dst, filter); !errors.Is(err, ErrNoPath) {
					t.Fatalf("seed %d: filtered-out endpoint should yield ErrNoPath, got %v", seed, err)
				}
				continue
			}
			wantPath, wantW, wantErr := sub.ShortestPath(src, dst)
			gotPath, gotW, gotErr := f.ShortestPathFiltered(src, dst, filter)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %d->%d: error mismatch sub=%v frozen=%v", seed, src, dst, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !pathsEqual(wantPath, gotPath) || wantW != gotW {
				t.Fatalf("seed %d %d->%d: sub %v (%g) vs filtered frozen %v (%g)",
					seed, src, dst, wantPath, wantW, gotPath, gotW)
			}
		}
	}
}

// TestFrozenKShortestGolden asserts Yen's output — paths and weights —
// is byte-identical between the implementations.
func TestFrozenKShortestGolden(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomWeightedGraph(t, seed, 24, 70)
		f := g.Frozen()
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 12; trial++ {
			src := VertexID(1 + rng.Intn(24))
			dst := VertexID(1 + rng.Intn(24))
			if src == dst {
				continue
			}
			k := 1 + rng.Intn(5)
			wantPaths, wantWs, wantErr := g.KShortestPaths(src, dst, k)
			gotPaths, gotWs, gotErr := f.KShortestPaths(src, dst, k)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d %d->%d k=%d: error mismatch map=%v frozen=%v", seed, src, dst, k, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if len(wantPaths) != len(gotPaths) {
				t.Fatalf("seed %d %d->%d k=%d: %d vs %d paths", seed, src, dst, k, len(wantPaths), len(gotPaths))
			}
			for i := range wantPaths {
				if !pathsEqual(wantPaths[i], gotPaths[i]) || wantWs[i] != gotWs[i] {
					t.Fatalf("seed %d %d->%d k=%d path %d: map %v (%g) vs frozen %v (%g)",
						seed, src, dst, k, i, wantPaths[i], wantWs[i], gotPaths[i], gotWs[i])
				}
			}
		}
	}
}

// TestFrozenBFSOrderGolden asserts BFS order parity, unfiltered and
// against the induced subgraph when filtered.
func TestFrozenBFSOrderGolden(t *testing.T) {
	g := randomWeightedGraph(t, 3, 25, 60)
	f := g.Frozen()
	for v := 1; v <= 25; v++ {
		want := g.BFSOrder(VertexID(v))
		got := f.BFSOrder(VertexID(v), nil)
		if !pathsEqual(want, got) {
			t.Fatalf("BFS from %d: map %v vs frozen %v", v, want, got)
		}
	}
	keep := make(map[VertexID]bool)
	for v := 1; v <= 25; v += 2 {
		keep[VertexID(v)] = true
	}
	sub := g.Subgraph(keep)
	for v := range keep {
		want := sub.BFSOrder(v)
		got := f.BFSOrder(v, func(u VertexID) bool { return keep[u] })
		if !pathsEqual(want, got) {
			t.Fatalf("filtered BFS from %d: sub %v vs frozen %v", v, want, got)
		}
	}
}

// TestFrozenAccessors covers the small read API.
func TestFrozenAccessors(t *testing.T) {
	g := New(false)
	if err := g.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 2); err != nil { // parallel, lighter
		t.Fatal(err)
	}
	f := g.Frozen()
	if f.Directed() {
		t.Fatal("expected undirected")
	}
	if f.VertexCount() != 3 || f.EdgeCount() != 3 {
		t.Fatalf("counts: %d vertices %d edges", f.VertexCount(), f.EdgeCount())
	}
	if !f.HasVertex(2) || f.HasVertex(9) {
		t.Fatal("HasVertex mismatch")
	}
	if w, ok := f.EdgeWeight(1, 2); !ok || w != 2 {
		t.Fatalf("EdgeWeight(1,2) = %g, %v; want min parallel weight 2", w, ok)
	}
	if _, ok := f.EdgeWeight(1, 3); ok {
		t.Fatal("EdgeWeight(1,3) should not exist")
	}
	if _, _, err := f.ShortestPath(9, 1); err == nil {
		t.Fatal("unknown source should error")
	}
	if _, _, err := f.KShortestPaths(1, 3, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	dists, err := f.Distances(1, nil)
	if err != nil || dists[3] != 3 {
		t.Fatalf("Distances: %v, %v", dists, err)
	}
}

// grid builds an nxn unit-weight grid — the tie-heavy worst case.
func grid(t testing.TB, n int) *Graph {
	g := New(false)
	id := func(r, c int) VertexID { return VertexID(r*n + c + 1) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				if err := g.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < n {
				if err := g.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func BenchmarkShortestPathMap(b *testing.B) {
	g := grid(b, 20)
	src, dst := VertexID(1), VertexID(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.ShortestPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPathFrozen(b *testing.B) {
	g := grid(b, 20)
	f := g.Frozen()
	src, dst := VertexID(1), VertexID(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.ShortestPath(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortestMap(b *testing.B) {
	g := grid(b, 10)
	src, dst := VertexID(1), VertexID(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.KShortestPaths(src, dst, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKShortestFrozen(b *testing.B) {
	g := grid(b, 10)
	f := g.Frozen()
	src, dst := VertexID(1), VertexID(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.KShortestPaths(src, dst, 4); err != nil {
			b.Fatal(err)
		}
	}
}
