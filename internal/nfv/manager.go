package nfv

import (
	"fmt"
	"sort"
	"sync"

	"github.com/alvc/alvc/internal/topology"
)

// InstanceID identifies a VNF instance.
type InstanceID int

// State is a VNF lifecycle state. Transitions follow §IV-B's manager
// responsibilities (creation, scaling, update, termination):
//
//	Create  → Pending
//	Activate: Pending → Active
//	ScaleTo:  Active  → Active (replica count changes)
//	Update:   Active  → Updating → Active
//	Terminate: any non-terminated → Terminated
type State int

// Lifecycle states.
const (
	StatePending State = iota + 1
	StateActive
	StateUpdating
	StateTerminated
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateUpdating:
		return "updating"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Instance is a placed VNF.
type Instance struct {
	ID       InstanceID
	Type     NFType
	Host     topology.NodeID
	Domain   topology.Domain
	Replicas int
	State    State
	Version  int
	// Demand is the per-replica resource demand at placement time.
	Demand topology.Resources
}

// Event records one lifecycle transition for auditability.
type Event struct {
	Seq      int
	Instance InstanceID
	From, To State
	Note     string
}

// Manager is the Cloud/NFV manager of Fig. 6: it owns VNF instances,
// their lifecycle and the host resource ledger. Safe for concurrent
// use.
type Manager struct {
	mu        sync.Mutex
	topo      *topology.Topology
	ledger    *Ledger
	profiles  map[NFType]NFProfile
	instances map[InstanceID]*Instance
	events    []Event
	nextID    InstanceID
	eventSeq  int
}

// NewManager returns a manager over the topology with the default
// catalog.
func NewManager(topo *topology.Topology) (*Manager, error) {
	ledger, err := NewLedger(topo)
	if err != nil {
		return nil, err
	}
	return &Manager{
		topo:      topo,
		ledger:    ledger,
		profiles:  DefaultProfiles(),
		instances: make(map[InstanceID]*Instance),
	}, nil
}

// Ledger exposes the host resource ledger (shared with placement).
func (m *Manager) Ledger() *Ledger { return m.ledger }

func (m *Manager) recordLocked(id InstanceID, from, to State, note string) {
	m.eventSeq++
	m.events = append(m.events, Event{Seq: m.eventSeq, Instance: id, From: from, To: to, Note: note})
}

// Create places a new VNF of type t on host, reserving one replica's
// resources. The instance starts Pending; call Activate to bring it up.
func (m *Manager) Create(t NFType, host topology.NodeID) (*Instance, error) {
	profile, ok := m.profiles[t]
	if !ok {
		return nil, fmt.Errorf("nfv: create: unknown NF type %q", t)
	}
	node := m.topo.Node(host)
	if node == nil {
		return nil, fmt.Errorf("nfv: create: unknown host %d", host)
	}
	if node.Down {
		return nil, fmt.Errorf("nfv: create: host %d is down", host)
	}
	domain, ok := m.ledger.Domain(host)
	if !ok {
		return nil, fmt.Errorf("nfv: create: node %d (%s) cannot host VNFs", host, node.Kind)
	}
	if err := m.ledger.Alloc(host, profile.Demand); err != nil {
		return nil, fmt.Errorf("nfv: create %s on %d: %w", t, host, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	inst := &Instance{
		ID:       m.nextID,
		Type:     t,
		Host:     host,
		Domain:   domain,
		Replicas: 1,
		State:    StatePending,
		Version:  1,
		Demand:   profile.Demand,
	}
	m.instances[inst.ID] = inst
	m.recordLocked(inst.ID, 0, StatePending, fmt.Sprintf("created %s on node %d (%s)", t, host, domain))
	return m.copyLocked(inst), nil
}

// Activate brings a Pending instance to Active.
func (m *Manager) Activate(id InstanceID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, err := m.getLocked(id)
	if err != nil {
		return err
	}
	if inst.State != StatePending {
		return fmt.Errorf("nfv: activate: instance %d is %s, want pending", id, inst.State)
	}
	inst.State = StateActive
	m.recordLocked(id, StatePending, StateActive, "activated")
	return nil
}

// ScaleTo changes the replica count of an Active instance, adjusting
// host reservations. Scaling to zero is rejected (terminate instead).
func (m *Manager) ScaleTo(id InstanceID, replicas int) error {
	if replicas <= 0 {
		return fmt.Errorf("nfv: scale: replicas must be positive, got %d", replicas)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, err := m.getLocked(id)
	if err != nil {
		return err
	}
	if inst.State != StateActive {
		return fmt.Errorf("nfv: scale: instance %d is %s, want active", id, inst.State)
	}
	delta := replicas - inst.Replicas
	switch {
	case delta > 0:
		if err := m.ledger.Alloc(inst.Host, inst.Demand.Scale(float64(delta))); err != nil {
			return fmt.Errorf("nfv: scale out instance %d: %w", id, err)
		}
	case delta < 0:
		if err := m.ledger.Free(inst.Host, inst.Demand.Scale(float64(-delta))); err != nil {
			return fmt.Errorf("nfv: scale in instance %d: %w", id, err)
		}
	default:
		return nil
	}
	from := inst.Replicas
	inst.Replicas = replicas
	m.recordLocked(id, StateActive, StateActive, fmt.Sprintf("scaled %d -> %d replicas", from, replicas))
	return nil
}

// Update performs an in-place version upgrade: Active → Updating →
// Active, bumping Version.
func (m *Manager) Update(id InstanceID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, err := m.getLocked(id)
	if err != nil {
		return err
	}
	if inst.State != StateActive {
		return fmt.Errorf("nfv: update: instance %d is %s, want active", id, inst.State)
	}
	inst.State = StateUpdating
	m.recordLocked(id, StateActive, StateUpdating, "update started")
	inst.Version++
	inst.State = StateActive
	m.recordLocked(id, StateUpdating, StateActive, fmt.Sprintf("update finished, version %d", inst.Version))
	return nil
}

// Migrate moves an Active instance (all replicas) to another hosting-
// capable node, reserving the destination before releasing the source
// so a failed migration leaves the instance where it was. The paper's
// introduction motivates exactly this: "without virtualization, we are
// limited to place a VM and also are limited in replacing or moving
// it".
func (m *Manager) Migrate(id InstanceID, to topology.NodeID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, err := m.getLocked(id)
	if err != nil {
		return err
	}
	if inst.State != StateActive {
		return fmt.Errorf("nfv: migrate: instance %d is %s, want active", id, inst.State)
	}
	if to == inst.Host {
		return nil
	}
	node := m.topo.Node(to)
	if node == nil {
		return fmt.Errorf("nfv: migrate: unknown host %d", to)
	}
	if node.Down {
		return fmt.Errorf("nfv: migrate: host %d is down", to)
	}
	domain, ok := m.ledger.Domain(to)
	if !ok {
		return fmt.Errorf("nfv: migrate: node %d (%s) cannot host VNFs", to, node.Kind)
	}
	total := inst.Demand.Scale(float64(inst.Replicas))
	if err := m.ledger.Alloc(to, total); err != nil {
		return fmt.Errorf("nfv: migrate instance %d to %d: %w", id, to, err)
	}
	if err := m.ledger.Free(inst.Host, total); err != nil {
		// Destination reservation must not leak on the (unexpected)
		// source-accounting failure.
		_ = m.ledger.Free(to, total)
		return fmt.Errorf("nfv: migrate instance %d: release source: %w", id, err)
	}
	from := inst.Host
	inst.Host = to
	inst.Domain = domain
	m.recordLocked(id, StateActive, StateActive,
		fmt.Sprintf("migrated node %d -> %d (%s)", from, to, domain))
	return nil
}

// Terminate releases the instance's resources and marks it Terminated.
// Terminating twice is an error.
func (m *Manager) Terminate(id InstanceID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, err := m.getLocked(id)
	if err != nil {
		return err
	}
	if inst.State == StateTerminated {
		return fmt.Errorf("nfv: terminate: instance %d already terminated", id)
	}
	if err := m.ledger.Free(inst.Host, inst.Demand.Scale(float64(inst.Replicas))); err != nil {
		return fmt.Errorf("nfv: terminate instance %d: %w", id, err)
	}
	from := inst.State
	inst.State = StateTerminated
	m.recordLocked(id, from, StateTerminated, "terminated")
	return nil
}

func (m *Manager) getLocked(id InstanceID) (*Instance, error) {
	inst, ok := m.instances[id]
	if !ok {
		return nil, fmt.Errorf("nfv: unknown instance %d", id)
	}
	return inst, nil
}

func (m *Manager) copyLocked(inst *Instance) *Instance {
	c := *inst
	return &c
}

// Instance returns a copy of the instance, or nil if unknown.
func (m *Manager) Instance(id InstanceID) *Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.instances[id]
	if !ok {
		return nil
	}
	return m.copyLocked(inst)
}

// Instances returns copies of all instances sorted by ID.
func (m *Manager) Instances() []*Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Instance, 0, len(m.instances))
	for _, inst := range m.instances {
		out = append(out, m.copyLocked(inst))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InstancesOn returns copies of the non-terminated instances hosted on
// the given node, sorted by ID.
func (m *Manager) InstancesOn(host topology.NodeID) []*Instance {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*Instance
	for _, inst := range m.instances {
		if inst.Host == host && inst.State != StateTerminated {
			out = append(out, m.copyLocked(inst))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events returns a copy of the lifecycle audit log.
func (m *Manager) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}
