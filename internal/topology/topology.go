package topology

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/alvc/alvc/internal/graph"
)

// Topology is a mutable data-center network. It is not safe for
// concurrent mutation; the orchestration layers treat it as read-only
// after construction.
type Topology struct {
	nodes    map[NodeID]*Node
	links    map[LinkID]*Link
	adj      map[NodeID][]LinkID
	nextNode NodeID
	nextLink LinkID

	// gen is the total mutation epoch (see Generation) and structGen
	// the structural one (see StructuralGeneration) — liveness
	// transitions bump only the former, so cached routing snapshots
	// survive failure storms. builds counts from-scratch routing-graph
	// constructions (see GraphBuilds). All are accessed atomically so
	// snapshot-cache reads never race with mutators even outside the
	// orchestrator's topology lock.
	gen       uint64
	structGen uint64
	builds    uint64

	// snapHits counts warm RoutingSnapshot fetches (cache hits) and
	// livePatches counts in-place liveness overlay patches — the two
	// counters that, against builds, tell an operator whether the
	// routing fast path is actually being hit (see SnapshotHits,
	// LivenessPatches).
	snapHits    uint64
	livePatches uint64

	// liveGen is the live-mask version: it bumps once per applied
	// liveness batch, after the overlay patch lands (see
	// LivenessGeneration). Together with structGen it versions the
	// effective routing state, keying caches of search *results* —
	// an entry computed under (structGen, liveGen) is valid iff both
	// still match.
	liveGen uint64

	// snapMu guards the epoch-keyed routing-snapshot cache. Snapshots
	// themselves are immutable once published.
	snapMu sync.Mutex
	snaps  map[snapKey]*Snapshot

	// derivedMu guards the per-generation derived adjacency caches:
	// kind-filtered neighbor lists and node-pair link resolution. Both
	// are pure functions of the topology at one generation and are
	// discarded wholesale when the generation moves. They exist because
	// AL construction and standby scoring ask the same "OPSs of this
	// ToR" / "link between these two" questions thousands of times per
	// provisioning batch, and each cold answer walks a ToR's full uplink
	// list with a map lookup per link.
	derivedMu  sync.Mutex
	derivedGen uint64
	kindAdj    map[kindAdjKey][]NodeID
	pairLive   map[int64]*Link
	pairAny    map[int64]*Link
}

// kindAdjKey keys one cached neighborsOfKind answer.
type kindAdjKey struct {
	id   NodeID
	kind NodeKind
}

// packPair keys one cached node-pair link answer.
func packPair(a, b NodeID) int64 { return int64(a)<<32 | int64(uint32(b)) }

// resetDerivedLocked clears the derived caches if the topology mutated
// since they were filled. Caller holds derivedMu.
func (t *Topology) resetDerivedLocked() {
	gen := t.Generation()
	if t.kindAdj == nil || t.derivedGen != gen {
		t.kindAdj = make(map[kindAdjKey][]NodeID)
		t.pairLive = make(map[int64]*Link)
		t.pairAny = make(map[int64]*Link)
		t.derivedGen = gen
	}
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{
		nodes: make(map[NodeID]*Node),
		links: make(map[LinkID]*Link),
		adj:   make(map[NodeID][]LinkID),
	}
}

func (t *Topology) addNode(n Node) NodeID {
	t.nextNode++
	n.ID = t.nextNode
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s-%d", n.Kind, n.ID)
	}
	t.nodes[n.ID] = &n
	t.bumpStructural()
	return n.ID
}

// AddPM adds a physical machine in the given rack with the given
// capacity.
func (t *Topology) AddPM(rack int, capacity Resources) NodeID {
	return t.addNode(Node{Kind: KindPhysicalMachine, Rack: rack, Capacity: capacity})
}

// AddVM adds a virtual machine hosted on pm offering the given service.
// It returns an error if pm is not a physical machine.
func (t *Topology) AddVM(pm NodeID, service string) (NodeID, error) {
	host, ok := t.nodes[pm]
	if !ok || host.Kind != KindPhysicalMachine {
		return 0, fmt.Errorf("topology: AddVM: node %d is not a physical machine", pm)
	}
	id := t.addNode(Node{Kind: KindVM, Host: pm, Service: service, Rack: host.Rack})
	return id, nil
}

// AddToR adds a Top-of-Rack switch for the given rack.
func (t *Topology) AddToR(rack int) NodeID {
	return t.addNode(Node{Kind: KindToR, Rack: rack})
}

// AddOPS adds an optical packet switch. If optoelectronic is true the
// switch can host VNFs with the given (limited) capacity.
func (t *Topology) AddOPS(optoelectronic bool, capacity Resources) NodeID {
	if !optoelectronic {
		capacity = Resources{}
	}
	return t.addNode(Node{Kind: KindOPS, Rack: -1, Optoelectronic: optoelectronic, Capacity: capacity})
}

// AddLink connects two existing nodes. The link kind must be consistent
// with the endpoint kinds (electronic: both electronic-domain nodes;
// boundary: exactly one OPS; optical: both OPSs).
func (t *Topology) AddLink(from, to NodeID, kind LinkKind, bandwidthGbps, latencyMicros float64) (LinkID, error) {
	nf, ok := t.nodes[from]
	if !ok {
		return 0, fmt.Errorf("topology: AddLink: unknown node %d", from)
	}
	nt, ok := t.nodes[to]
	if !ok {
		return 0, fmt.Errorf("topology: AddLink: unknown node %d", to)
	}
	if from == to {
		return 0, fmt.Errorf("topology: AddLink: self link on %d", from)
	}
	opsEnds := 0
	if nf.Kind == KindOPS {
		opsEnds++
	}
	if nt.Kind == KindOPS {
		opsEnds++
	}
	switch kind {
	case LinkElectronic:
		if opsEnds != 0 {
			return 0, fmt.Errorf("topology: AddLink: electronic link %d-%d touches the optical domain", from, to)
		}
	case LinkBoundary:
		if opsEnds != 1 {
			return 0, fmt.Errorf("topology: AddLink: boundary link %d-%d must have exactly one OPS end", from, to)
		}
	case LinkOptical:
		if opsEnds != 2 {
			return 0, fmt.Errorf("topology: AddLink: optical link %d-%d must connect two OPSs", from, to)
		}
	default:
		return 0, fmt.Errorf("topology: AddLink: unknown link kind %d", kind)
	}
	t.nextLink++
	l := &Link{ID: t.nextLink, From: from, To: to, Kind: kind,
		BandwidthGbps: bandwidthGbps, LatencyMicros: latencyMicros}
	t.links[l.ID] = l
	t.adj[from] = append(t.adj[from], l.ID)
	t.adj[to] = append(t.adj[to], l.ID)
	t.bumpStructural()
	return l.ID, nil
}

// RemoveVM deletes a VM from the topology (churn: VM departure). Only
// VMs can be removed; switches and PMs are fixed plant.
func (t *Topology) RemoveVM(vm NodeID) error {
	n := t.nodes[vm]
	if n == nil || n.Kind != KindVM {
		return fmt.Errorf("topology: RemoveVM: node %d is not a VM", vm)
	}
	delete(t.nodes, vm)
	t.bumpStructural()
	return nil
}

// MigrateVM moves a VM to another physical machine (churn: VM
// migration). The VM keeps its ID and service label.
func (t *Topology) MigrateVM(vm, toPM NodeID) error {
	n := t.nodes[vm]
	if n == nil || n.Kind != KindVM {
		return fmt.Errorf("topology: MigrateVM: node %d is not a VM", vm)
	}
	host := t.nodes[toPM]
	if host == nil || host.Kind != KindPhysicalMachine {
		return fmt.Errorf("topology: MigrateVM: node %d is not a physical machine", toPM)
	}
	n.Host = toPM
	n.Rack = host.Rack
	t.bumpStructural()
	return nil
}

// Node returns the node with the given ID, or nil.
func (t *Topology) Node(id NodeID) *Node { return t.nodes[id] }

// Link returns the link with the given ID, or nil.
func (t *Topology) Link(id LinkID) *Link { return t.links[id] }

// NodeCount returns the total number of nodes.
func (t *Topology) NodeCount() int { return len(t.nodes) }

// LinkCount returns the total number of links.
func (t *Topology) LinkCount() int { return len(t.links) }

// Nodes returns all nodes of the given kinds (all nodes if none given),
// sorted by ID.
func (t *Topology) Nodes(kinds ...NodeKind) []*Node {
	want := make(map[NodeKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []*Node
	for _, n := range t.nodes {
		if len(want) == 0 || want[n.Kind] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeIDs returns the IDs of all nodes of the given kinds, sorted.
func (t *Topology) NodeIDs(kinds ...NodeKind) []NodeID {
	ns := t.Nodes(kinds...)
	ids := make([]NodeID, len(ns))
	for i, n := range ns {
		ids[i] = n.ID
	}
	return ids
}

// Links returns all links sorted by ID.
func (t *Topology) Links() []*Link {
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LinksOf returns the links incident to id sorted by link ID.
func (t *Topology) LinksOf(id NodeID) []*Link {
	ids := append([]LinkID(nil), t.adj[id]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Link, 0, len(ids))
	for _, lid := range ids {
		out = append(out, t.links[lid])
	}
	return out
}

// Neighbors returns the IDs of nodes adjacent to id, deduplicated and
// sorted.
func (t *Topology) Neighbors(id NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	var out []NodeID
	for _, l := range t.LinksOf(id) {
		other := l.From
		if other == id {
			other = l.To
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// neighborsOfKind returns sorted adjacent live nodes of the given kind,
// reachable over live links. Answers are cached per topology generation
// because AL construction asks the same question for the same ToRs on
// every build; the returned slice is shared with the cache and must be
// treated as read-only by callers (all of them only iterate or count).
func (t *Topology) neighborsOfKind(id NodeID, kind NodeKind) []NodeID {
	t.derivedMu.Lock()
	defer t.derivedMu.Unlock()
	t.resetDerivedLocked()
	key := kindAdjKey{id: id, kind: kind}
	if out, ok := t.kindAdj[key]; ok {
		return out
	}
	var out []NodeID
	for _, lid := range t.adj[id] {
		l := t.links[lid]
		if l == nil || l.Down {
			continue
		}
		other := l.From
		if other == id {
			other = l.To
		}
		n := t.nodes[other]
		if n == nil || n.Kind != kind || n.Down {
			continue
		}
		out = append(out, other)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	out = out[:w]
	t.kindAdj[key] = out
	return out
}

// SetNodeDown marks a switch or machine as failed (or repaired).
// Down nodes disappear from connectivity queries and routing searches.
// This is a liveness transition: cached routing snapshots are patched
// in place (zero graph rebuilds), only the derived caches invalidate.
func (t *Topology) SetNodeDown(id NodeID, down bool) error {
	n := t.nodes[id]
	if n == nil {
		return fmt.Errorf("topology: SetNodeDown: unknown node %d", id)
	}
	n.Down = down
	t.bumpGeneration()
	t.applyLiveness([]*Node{n}, nil, down)
	return nil
}

// SetLinkDown marks a link as failed (or repaired). Like SetNodeDown
// this patches cached routing snapshots in place instead of rebuilding.
func (t *Topology) SetLinkDown(id LinkID, down bool) error {
	l := t.links[id]
	if l == nil {
		return fmt.Errorf("topology: SetLinkDown: unknown link %d", id)
	}
	l.Down = down
	t.bumpGeneration()
	t.applyLiveness(nil, []*Link{l}, down)
	return nil
}

// SetNodesDown marks a whole set of nodes failed (or recovered) as one
// liveness transition: every ID is validated before anything mutates
// (atomic reject), the generation bumps once instead of once per node,
// and all cached snapshots absorb the batch under a single overlay
// patch — the fast path for rack events and failure storms.
func (t *Topology) SetNodesDown(ids []NodeID, down bool) error {
	if len(ids) == 0 {
		return nil
	}
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		n := t.nodes[id]
		if n == nil {
			return fmt.Errorf("topology: SetNodesDown: unknown node %d", id)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Down = down
	}
	t.bumpGeneration()
	t.applyLiveness(nodes, nil, down)
	return nil
}

// SetLinksDown is SetNodesDown for links: one validation pass, one
// generation bump, one overlay patch for the whole set.
func (t *Topology) SetLinksDown(ids []LinkID, down bool) error {
	if len(ids) == 0 {
		return nil
	}
	links := make([]*Link, len(ids))
	for i, id := range ids {
		l := t.links[id]
		if l == nil {
			return fmt.Errorf("topology: SetLinksDown: unknown link %d", id)
		}
		links[i] = l
	}
	for _, l := range links {
		l.Down = down
	}
	t.bumpGeneration()
	t.applyLiveness(nil, links, down)
	return nil
}

// SetLinkLatency updates a link's latency (e.g. re-calibrated
// measurements), invalidating cached routing snapshots.
func (t *Topology) SetLinkLatency(id LinkID, latencyMicros float64) error {
	l := t.links[id]
	if l == nil {
		return fmt.Errorf("topology: SetLinkLatency: unknown link %d", id)
	}
	if latencyMicros < 0 {
		return fmt.Errorf("topology: SetLinkLatency: negative latency %f on link %d", latencyMicros, id)
	}
	l.LatencyMicros = latencyMicros
	t.bumpStructural()
	return nil
}

// SetLinkSRLG assigns the link's shared-risk group IDs (replacing any
// previous assignment). Groups model co-located physical risk — links
// in one cable tray or on one power feed fail together — and are
// consumed by standby planning (shared group counts as overlap) and
// failure classification (same-group links become suspect). Call at
// topology-build time; the assignment is read lock-free afterwards.
func (t *Topology) SetLinkSRLG(id LinkID, groups ...int) error {
	l := t.links[id]
	if l == nil {
		return fmt.Errorf("topology: SetLinkSRLG: unknown link %d", id)
	}
	l.SRLG = append([]int(nil), groups...)
	t.bumpStructural()
	return nil
}

// LinkBetween returns a live link connecting a and b, or nil. With
// parallel links the lowest link ID wins (matching LinksOf order). The
// adjacency list is scanned unsorted: standby planning calls this per
// hop of every candidate path, and sorting a wide ToR's links each
// time dominated the planner's profile.
func (t *Topology) LinkBetween(a, b NodeID) *Link {
	t.derivedMu.Lock()
	defer t.derivedMu.Unlock()
	t.resetDerivedLocked()
	key := packPair(a, b)
	if l, ok := t.pairLive[key]; ok {
		return l
	}
	var best *Link
	for _, lid := range t.adj[a] {
		l := t.links[lid]
		if l == nil || l.Down {
			continue
		}
		if (l.From == b || l.To == b) && (best == nil || l.ID < best.ID) {
			best = l
		}
	}
	t.pairLive[key] = best
	return best
}

// AnyLinkBetween is LinkBetween without the liveness filter: the
// lowest-ID link joining a and b, up or down. Failure classification
// walks paths hop by hop asking "did the dead link sit here" after the
// link was already marked down, so it needs the dead ones too.
func (t *Topology) AnyLinkBetween(a, b NodeID) *Link {
	t.derivedMu.Lock()
	defer t.derivedMu.Unlock()
	t.resetDerivedLocked()
	key := packPair(a, b)
	if l, ok := t.pairAny[key]; ok {
		return l
	}
	var best *Link
	for _, lid := range t.adj[a] {
		l := t.links[lid]
		if l == nil {
			continue
		}
		if (l.From == b || l.To == b) && (best == nil || l.ID < best.ID) {
			best = l
		}
	}
	t.pairAny[key] = best
	return best
}

// ToRsOfPM returns the ToR switches the physical machine is wired to.
// Racks may be multi-homed, so there can be more than one (Fig. 4 shows
// machines reachable through several ToRs).
func (t *Topology) ToRsOfPM(pm NodeID) []NodeID {
	return t.neighborsOfKind(pm, KindToR)
}

// ToRsOfVM returns the ToRs of the VM's hosting PM.
func (t *Topology) ToRsOfVM(vm NodeID) []NodeID {
	n := t.nodes[vm]
	if n == nil || n.Kind != KindVM {
		return nil
	}
	return t.ToRsOfPM(n.Host)
}

// OPSsOfToR returns the OPSs the ToR uplinks to.
func (t *Topology) OPSsOfToR(tor NodeID) []NodeID {
	return t.neighborsOfKind(tor, KindOPS)
}

// VMsOnPM returns the VMs hosted on pm, sorted by ID.
func (t *Topology) VMsOnPM(pm NodeID) []NodeID {
	var out []NodeID
	for _, n := range t.Nodes(KindVM) {
		if n.Host == pm {
			out = append(out, n.ID)
		}
	}
	return out
}

// VMsByService groups all VM IDs by their service label. This is the
// paper's service-based clustering input (§III-A).
func (t *Topology) VMsByService() map[string][]NodeID {
	out := make(map[string][]NodeID)
	for _, n := range t.Nodes(KindVM) {
		out[n.Service] = append(out[n.Service], n.ID)
	}
	return out
}

// VMToRBipartite projects the VM↔ToR connectivity of the given VMs onto
// a bipartite graph (lefts = VMs, rights = ToRs) — the input to the
// first phase of AL construction (§III-C).
func (t *Topology) VMToRBipartite(vms []NodeID) (*graph.Bipartite, error) {
	b := graph.NewBipartite()
	for _, vm := range vms {
		n := t.nodes[vm]
		if n == nil || n.Kind != KindVM {
			return nil, fmt.Errorf("topology: VMToRBipartite: node %d is not a VM", vm)
		}
		b.AddLeft(graph.VertexID(vm))
		for _, tor := range t.ToRsOfVM(vm) {
			b.AddEdge(graph.VertexID(vm), graph.VertexID(tor))
		}
	}
	return b, nil
}

// ToROPSBipartite projects the ToR↔OPS connectivity of the given ToRs
// onto a bipartite graph (lefts = ToRs, rights = OPSs) — the input to
// the second phase of AL construction. If allow is non-nil only OPSs in
// allow appear, honoring the one-OPS-one-AL constraint.
func (t *Topology) ToROPSBipartite(tors []NodeID, allow map[NodeID]bool) (*graph.Bipartite, error) {
	b := graph.NewBipartite()
	for _, tor := range tors {
		n := t.nodes[tor]
		if n == nil || n.Kind != KindToR {
			return nil, fmt.Errorf("topology: ToROPSBipartite: node %d is not a ToR", tor)
		}
		b.AddLeft(graph.VertexID(tor))
		for _, ops := range t.OPSsOfToR(tor) {
			if allow != nil && !allow[ops] {
				continue
			}
			b.AddEdge(graph.VertexID(tor), graph.VertexID(ops))
		}
	}
	return b, nil
}

// GraphOptions selects which parts of the topology are projected into a
// routing graph.
type GraphOptions struct {
	// IncludeVMs adds VM nodes linked to their host PM (zero-latency
	// virtual edges). Off by default: routing usually starts at ToRs.
	IncludeVMs bool
	// RestrictOPS, when non-nil, keeps only these OPSs — used to route
	// inside a slice (AL).
	RestrictOPS map[NodeID]bool
	// Weight selects the edge weight: latency (default) or hop count.
	UseHops bool
}

// RoutingGraph projects the topology onto a weighted graph for path
// computation. Edge weight is link latency in microseconds, or 1 per
// hop when UseHops is set. Down nodes and links are excluded.
func (t *Topology) RoutingGraph(opts GraphOptions) *graph.Graph {
	atomic.AddUint64(&t.builds, 1)
	g := graph.New(false)
	include := func(n *Node) bool {
		if n.Down {
			return false
		}
		switch n.Kind {
		case KindVM:
			return opts.IncludeVMs
		case KindOPS:
			return opts.RestrictOPS == nil || opts.RestrictOPS[n.ID]
		default:
			return true
		}
	}
	for _, n := range t.Nodes() {
		if include(n) && n.Kind != KindVM {
			g.AddVertex(graph.VertexID(n.ID))
		}
	}
	for _, l := range t.Links() {
		if l.Down {
			continue
		}
		nf, nt := t.nodes[l.From], t.nodes[l.To]
		if !include(nf) || !include(nt) {
			continue
		}
		if nf.Kind == KindVM || nt.Kind == KindVM {
			continue
		}
		w := l.LatencyMicros
		if opts.UseHops {
			w = 1
		}
		_ = g.AddEdge(graph.VertexID(l.From), graph.VertexID(l.To), w)
	}
	if opts.IncludeVMs {
		for _, n := range t.Nodes(KindVM) {
			if n.Down || t.nodes[n.Host] == nil || t.nodes[n.Host].Down {
				continue
			}
			g.AddVertex(graph.VertexID(n.ID))
			w := 0.1
			if opts.UseHops {
				w = 1
			}
			_ = g.AddEdge(graph.VertexID(n.ID), graph.VertexID(n.Host), w)
		}
	}
	return g
}

// Stats summarizes a topology.
type Stats struct {
	PMs, VMs, ToRs, OPSs int
	OptoelectronicOPSs   int
	ElectronicLinks      int
	BoundaryLinks        int
	OpticalLinks         int
	Services             int
	AvgToRUplinks        float64
	AvgVMsPerPM          float64
}

// ComputeStats returns summary statistics.
func (t *Topology) ComputeStats() Stats {
	var s Stats
	services := make(map[string]bool)
	for _, n := range t.nodes {
		switch n.Kind {
		case KindPhysicalMachine:
			s.PMs++
		case KindVM:
			s.VMs++
			services[n.Service] = true
		case KindToR:
			s.ToRs++
		case KindOPS:
			s.OPSs++
			if n.Optoelectronic {
				s.OptoelectronicOPSs++
			}
		}
	}
	for _, l := range t.links {
		switch l.Kind {
		case LinkElectronic:
			s.ElectronicLinks++
		case LinkBoundary:
			s.BoundaryLinks++
		case LinkOptical:
			s.OpticalLinks++
		}
	}
	s.Services = len(services)
	if s.ToRs > 0 {
		total := 0
		for _, tor := range t.NodeIDs(KindToR) {
			total += len(t.OPSsOfToR(tor))
		}
		s.AvgToRUplinks = float64(total) / float64(s.ToRs)
	}
	if s.PMs > 0 {
		s.AvgVMsPerPM = float64(s.VMs) / float64(s.PMs)
	}
	return s
}
