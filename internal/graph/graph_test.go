package graph

import (
	"math"
	"testing"
)

func TestGraphBasics(t *testing.T) {
	g := New(false)
	g.AddVertex(1)
	if !g.HasVertex(1) {
		t.Fatal("vertex 1 missing after AddVertex")
	}
	if g.HasVertex(2) {
		t.Fatal("vertex 2 unexpectedly present")
	}
	if err := g.AddEdge(1, 2, 1.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("undirected edge must exist in both directions")
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.VertexCount() != 2 {
		t.Fatalf("VertexCount = %d, want 2", g.VertexCount())
	}
	w, ok := g.EdgeWeight(1, 2)
	if !ok || w != 1.5 {
		t.Fatalf("EdgeWeight = %f,%v want 1.5,true", w, ok)
	}
}

func TestGraphRejectsBadEdges(t *testing.T) {
	g := New(true)
	if err := g.AddEdge(1, 1, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddEdge(1, 2, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestDirectedEdgesOneWay(t *testing.T) {
	g := New(true)
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("forward edge missing")
	}
	if g.HasEdge(2, 1) {
		t.Fatal("reverse edge present in directed graph")
	}
}

func TestVerticesSorted(t *testing.T) {
	g := New(false)
	for _, v := range []VertexID{5, 3, 9, 1} {
		g.AddVertex(v)
	}
	vs := g.Vertices()
	want := []VertexID{1, 3, 5, 9}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Vertices = %v, want %v", vs, want)
		}
	}
}

func TestNeighborsDeduplicated(t *testing.T) {
	g := New(false)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(1, 2, 3) // parallel edge
	ns := g.Neighbors(1)
	if len(ns) != 1 || ns[0] != 2 {
		t.Fatalf("Neighbors = %v, want [2]", ns)
	}
	// EdgeWeight picks the minimum of parallel edges.
	w, _ := g.EdgeWeight(1, 2)
	if w != 1 {
		t.Fatalf("EdgeWeight over parallel edges = %f, want 1", w)
	}
}

func lineGraph(n int) *Graph {
	g := New(false)
	for i := 0; i < n-1; i++ {
		_ = g.AddEdge(VertexID(i), VertexID(i+1), 1)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(5)
	path, d, err := g.ShortestPath(0, 4)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if d != 4 {
		t.Fatalf("distance = %f, want 4", d)
	}
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("path = %v", path)
	}
}

func TestShortestPathPrefersLightEdges(t *testing.T) {
	g := New(false)
	_ = g.AddEdge(1, 2, 10)
	_ = g.AddEdge(1, 3, 1)
	_ = g.AddEdge(3, 2, 1)
	path, d, err := g.ShortestPath(1, 2)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if d != 2 {
		t.Fatalf("distance = %f, want 2", d)
	}
	if len(path) != 3 || path[1] != 3 {
		t.Fatalf("path = %v, want detour via 3", path)
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New(false)
	g.AddVertex(1)
	g.AddVertex(2)
	if _, _, err := g.ShortestPath(1, 2); err == nil {
		t.Fatal("expected error for disconnected vertices")
	}
}

func TestShortestPathUnknownVertex(t *testing.T) {
	g := lineGraph(3)
	if _, _, err := g.ShortestPath(0, 99); err == nil {
		t.Fatal("expected error for unknown destination")
	}
	if _, _, err := g.ShortestPath(99, 0); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := lineGraph(3)
	path, d, err := g.ShortestPath(1, 1)
	if err != nil {
		t.Fatalf("ShortestPath self: %v", err)
	}
	if d != 0 || len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v dist %f", path, d)
	}
}

func TestDistances(t *testing.T) {
	g := lineGraph(4)
	dist, err := g.Distances(0)
	if err != nil {
		t.Fatalf("Distances: %v", err)
	}
	for v, want := range map[VertexID]float64{0: 0, 1: 1, 2: 2, 3: 3} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %f, want %f", v, dist[v], want)
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := lineGraph(4)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	g.AddVertex(100)
	if g.Connected() {
		t.Fatal("isolated vertex should break connectivity")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %d, want 2", len(comps))
	}
}

func TestConnectedEmptyGraph(t *testing.T) {
	if !New(false).Connected() {
		t.Fatal("empty graph should be connected by convention")
	}
}

func TestConnectedDirectedWeak(t *testing.T) {
	g := New(true)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(3, 2, 1)
	if !g.Connected() {
		t.Fatal("weakly connected directed graph should report connected")
	}
}

func TestSubgraph(t *testing.T) {
	g := lineGraph(5)
	sub := g.Subgraph(map[VertexID]bool{0: true, 1: true, 2: true})
	if sub.VertexCount() != 3 {
		t.Fatalf("sub vertices = %d, want 3", sub.VertexCount())
	}
	if sub.EdgeCount() != 2 {
		t.Fatalf("sub edges = %d, want 2", sub.EdgeCount())
	}
	if sub.HasEdge(2, 3) {
		t.Fatal("edge outside keep set leaked into subgraph")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := lineGraph(3)
	c := g.Clone()
	_ = c.AddEdge(0, 2, 5)
	if g.HasEdge(0, 2) {
		t.Fatal("mutating clone affected original")
	}
	if g.EdgeCount() != 2 || c.EdgeCount() != 3 {
		t.Fatalf("edge counts: orig %d clone %d", g.EdgeCount(), c.EdgeCount())
	}
}

func TestKShortestPaths(t *testing.T) {
	// Diamond: 1-2-4 (w2), 1-3-4 (w3), 1-4 direct (w5).
	g := New(false)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(2, 4, 1)
	_ = g.AddEdge(1, 3, 1)
	_ = g.AddEdge(3, 4, 2)
	_ = g.AddEdge(1, 4, 5)
	paths, weights, err := g.KShortestPaths(1, 4, 3)
	if err != nil {
		t.Fatalf("KShortestPaths: %v", err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wantW := []float64{2, 3, 5}
	for i, w := range wantW {
		if math.Abs(weights[i]-w) > 1e-9 {
			t.Errorf("path %d weight = %f, want %f (paths %v)", i, weights[i], w, paths)
		}
	}
	// Nondecreasing weights.
	for i := 1; i < len(weights); i++ {
		if weights[i] < weights[i-1] {
			t.Errorf("weights not sorted: %v", weights)
		}
	}
}

func TestKShortestPathsFewerThanK(t *testing.T) {
	g := lineGraph(3)
	paths, _, err := g.KShortestPaths(0, 2, 5)
	if err != nil {
		t.Fatalf("KShortestPaths: %v", err)
	}
	if len(paths) != 1 {
		t.Fatalf("line graph has 1 loopless path, got %d", len(paths))
	}
}

func TestKShortestPathsBadK(t *testing.T) {
	g := lineGraph(3)
	if _, _, err := g.KShortestPaths(0, 2, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBFSOrderDeterministic(t *testing.T) {
	g := New(false)
	_ = g.AddEdge(1, 3, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(2, 4, 1)
	order := g.BFSOrder(1)
	want := []VertexID{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BFSOrder = %v, want %v", order, want)
		}
	}
}
