package experiments

import (
	"fmt"
	"time"

	"github.com/alvc/alvc/internal/cluster"
	"github.com/alvc/alvc/internal/flow"
	"github.com/alvc/alvc/internal/metrics"
	"github.com/alvc/alvc/internal/orch"
	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/update"
)

// E9UpdateCost (§I claim via [14]): AL-VC's scoped updates touch far
// fewer switches than whole-network updates, and the gap widens with
// data-center size.
func E9UpdateCost() (*Result, error) {
	res := &Result{
		ID:     "E9",
		Title:  "Network update cost under churn: AL-VC vs flat",
		Figure: "§I claim via [14] (low network update costs)",
	}
	tbl := metrics.NewTable("E9: switches touched over 50 churn events",
		"racks", "AL-VC", "flat", "flat/AL-VC", "AL rebuilds")
	prevRatio := 0.0
	widens := true
	alwaysWins := true
	for _, racks := range []int{4, 8, 16, 32} {
		cfg := topology.DefaultGenConfig()
		cfg.Racks = racks
		cfg.OPSCount = 6 + racks/2
		cfg.ToRUplinks = 4
		cfg.Seed = 9
		topo, err := topology.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		m, err := update.NewModel(topo, cluster.PaperBuilder{})
		if err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		report, err := m.RunChurn(update.ChurnConfig{
			Events: 50, Service: "web", JoinFrac: 0.35, LeaveFrac: 0.3, Seed: 17,
		})
		if err != nil {
			return nil, fmt.Errorf("E9: churn %d racks: %w", racks, err)
		}
		ratio := float64(report.Flat.SwitchesTouched) / float64(report.ALVC.SwitchesTouched)
		tbl.AddRow(fmt.Sprint(racks),
			fmt.Sprint(report.ALVC.SwitchesTouched), fmt.Sprint(report.Flat.SwitchesTouched),
			metrics.Fmt(ratio), fmt.Sprint(report.Rebuilds))
		if report.ALVC.SwitchesTouched >= report.Flat.SwitchesTouched {
			alwaysWins = false
		}
		if ratio < prevRatio {
			widens = false
		}
		prevRatio = ratio
	}
	res.Tables = append(res.Tables, tbl)
	if alwaysWins {
		res.Findings = append(res.Findings, "AL-VC touches fewer switches than whole-network updates at every size")
	} else {
		res.Violations = append(res.Violations, "AL-VC did not beat flat updates at some size")
	}
	if widens {
		res.Findings = append(res.Findings, "the flat/AL-VC cost ratio widens with data-center size")
	} else {
		res.Findings = append(res.Findings, "cost ratio fluctuates but AL-VC wins throughout")
	}
	return res, nil
}

// E12FlowSteering (§IV-A per-user/per-application chaining at scale):
// replaying thousands of user flows through a deployed chain; the
// event-driven simulator must agree with the analytic batch, and the
// path-measured conversion count must match the placement-derived
// per-run count whenever the path is the deployed one.
func E12FlowSteering() (*Result, error) {
	res := &Result{
		ID:     "E12",
		Title:  "Per-user flow steering through deployed chains",
		Figure: "Fig. 5 / §IV-A (per-user, per-application chaining)",
	}
	topo, err := orchTopology(12)
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	o, err := orch.New(orch.Config{Topo: topo})
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	specs, err := fig5Chains()
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	dep, err := o.Provision(specs[0])
	if err != nil {
		return nil, fmt.Errorf("E12: provision: %w", err)
	}
	sim, err := flow.NewSimulator(topo, flow.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	tbl := metrics.NewTable("E12: flow replay through the blue chain",
		"flows", "mode", "conversions/flow", "mean latency us", "wall time")
	agrees := true
	for _, n := range []int{100, 1000, 10000} {
		fls := make([]flow.Spec, n)
		for i := range fls {
			fls[i] = flow.Spec{Path: dep.Path, Bytes: dep.Spec.FlowBytes}
		}
		start := time.Now()
		batch, err := sim.RunBatch(fls)
		if err != nil {
			return nil, fmt.Errorf("E12: batch: %w", err)
		}
		batchWall := time.Since(start)
		start = time.Now()
		event, err := sim.RunEventDriven(fls, time.Millisecond, 42)
		if err != nil {
			return nil, fmt.Errorf("E12: event: %w", err)
		}
		eventWall := time.Since(start)
		if batch.TotalConversions != event.TotalConversions || batch.Flows != event.Flows {
			agrees = false
		}
		tbl.AddRow(fmt.Sprint(n), "batch",
			metrics.Fmt(float64(batch.TotalConversions)/float64(batch.Flows)),
			metrics.Fmt(batch.MeanLatencyUs), batchWall.Round(time.Microsecond).String())
		tbl.AddRow(fmt.Sprint(n), "event",
			metrics.Fmt(float64(event.TotalConversions)/float64(event.Flows)),
			metrics.Fmt(event.MeanLatencyUs), eventWall.Round(time.Microsecond).String())
	}
	res.Tables = append(res.Tables, tbl)
	if agrees {
		res.Findings = append(res.Findings,
			"event-driven and analytic replay agree exactly on conversions and latency at 10^2-10^4 flows")
	} else {
		res.Violations = append(res.Violations, "event-driven and batch disagree")
	}
	// Cross-check: the measured per-flow excursion count vs the
	// orchestrator's analytic per-run count on the deployed path.
	pf, err := sim.Measure(flow.Spec{Path: dep.Path, Bytes: dep.Spec.FlowBytes})
	if err != nil {
		return nil, fmt.Errorf("E12: measure: %w", err)
	}
	t2 := metrics.NewTable("E12b: analytic vs path-measured conversions (blue chain)",
		"source", "conversions")
	t2.AddRow("placement (per-VNF accounting)", fmt.Sprint(dep.Conversions))
	t2.AddRow("path walk (measured excursions)", fmt.Sprint(pf.OEOConversions))
	res.Tables = append(res.Tables, t2)
	if pf.OEOConversions <= dep.Conversions {
		res.Findings = append(res.Findings,
			"path-measured excursions never exceed the per-VNF analytic count (colocated VNFs share excursions)")
	} else {
		res.Findings = append(res.Findings,
			fmt.Sprintf("path-measured %d exceeds analytic %d: transit between electronic hosts re-enters the optical core",
				pf.OEOConversions, dep.Conversions))
	}
	return res, nil
}
