package optimizer

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/alvc/alvc/internal/orch"
	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/resilience"
	"github.com/alvc/alvc/internal/topology"
)

// countingTarget wraps an orchestrator and counts ReProtect calls per
// deployment — the exactly-once witness for storm-mode grouping.
type countingTarget struct {
	*orch.Orchestrator
	mu         sync.Mutex
	reprotects map[orch.DeploymentID]int
}

func (c *countingTarget) ReProtect(id orch.DeploymentID) (*resilience.Standby, bool, error) {
	c.mu.Lock()
	c.reprotects[id]++
	c.mu.Unlock()
	return c.Orchestrator.ReProtect(id)
}

// ReProtectGroup counts each member once — the embedded orchestrator's
// group entry point is what storm-group tasks call now, so exactly-once
// must hold across both paths combined.
func (c *countingTarget) ReProtectGroup(domain string, ids []orch.DeploymentID) orch.GroupReport {
	c.mu.Lock()
	for _, id := range ids {
		c.reprotects[id]++
	}
	c.mu.Unlock()
	return c.Orchestrator.ReProtectGroup(domain, ids)
}

// TestStormModeCoalescesByDomain: once the queue depth crosses the
// threshold, repair events sharing a failure domain fold into one
// group task; draining re-protects every member exactly once and
// disengages the storm.
func TestStormModeCoalescesByDomain(t *testing.T) {
	o, err := orch.New(orch.Config{Topo: wideTopo(t, 10), Policy: placement.AllElectronic{}})
	if err != nil {
		t.Fatalf("orch.New: %v", err)
	}
	target := &countingTarget{Orchestrator: o, reprotects: make(map[orch.DeploymentID]int)}
	eng, err := New(target, Options{StormThreshold: 2})
	if err != nil {
		t.Fatalf("optimizer.New: %v", err)
	}
	o.SetEventSink(eng)
	o.SetDeferReprotect(true)

	var deps []*orch.Deployment
	for i := 0; i < 6; i++ {
		deps = append(deps, provision(t, o, fmt.Sprintf("chain-%d", i)))
	}

	// A domain-stamped repair burst, as one HandleFailures batch emits
	// it. The first two events queue per-deployment (depth below the
	// threshold); the third crosses it, engages storm mode and opens
	// the domain group; the rest coalesce into it.
	for _, dep := range deps {
		eng.OrchEvent(orch.Event{
			Kind:       orch.EventRepairCompleted,
			Deployment: dep.ID,
			Action:     orch.ActionSwapped,
			Domain:     "srlg:7",
		})
	}
	st := eng.Status()
	if !st.Storm.Active || st.Storm.Activations != 1 {
		t.Fatalf("storm = %+v, want active after the burst", st.Storm)
	}
	if st.Storm.Domains != 1 || st.Storm.CoalescedTasks != 3 {
		t.Fatalf("storm = %+v, want Domains=1 CoalescedTasks=3", st.Storm)
	}
	// 2 per-deployment re-protects + 1 group task.
	if st.QueueDepth != 3 {
		t.Fatalf("queue depth = %d, want 3 (2 individual + 1 group)", st.QueueDepth)
	}

	results := eng.Drain()
	target.mu.Lock()
	for _, dep := range deps {
		if got := target.reprotects[dep.ID]; got != 1 {
			t.Fatalf("deployment %d re-protected %d times, want exactly 1", dep.ID, got)
		}
	}
	target.mu.Unlock()
	var groupSeen bool
	for _, res := range results {
		if res.Outcome == "storm-group" {
			groupSeen = true
			if !strings.Contains(res.Detail, "srlg:7") || !strings.Contains(res.Detail, "4 chains") {
				t.Fatalf("group result detail = %q", res.Detail)
			}
		}
	}
	if !groupSeen {
		t.Fatalf("no storm-group result in %+v", results)
	}
	if st = eng.Status(); st.Storm.Active {
		t.Fatalf("storm still active after drain: %+v", st.Storm)
	}
	if st.Storm.Activations != 1 {
		t.Fatalf("activations = %d, want 1", st.Storm.Activations)
	}
}

// TestStormDisabledAndThresholdGate: a negative threshold disables
// grouping entirely, and below the threshold domain-stamped events
// still queue per deployment.
func TestStormDisabledAndThresholdGate(t *testing.T) {
	o, eng := engineOver(t, wideTopo(t, 8), Options{StormThreshold: -1})
	var deps []*orch.Deployment
	for i := 0; i < 4; i++ {
		deps = append(deps, provision(t, o, fmt.Sprintf("chain-%d", i)))
	}
	for _, dep := range deps {
		eng.OrchEvent(orch.Event{
			Kind: orch.EventRepairCompleted, Deployment: dep.ID,
			Action: orch.ActionSwapped, Domain: "srlg:1",
		})
	}
	st := eng.Status()
	if st.Storm.Active || st.Storm.Domains != 0 {
		t.Fatalf("storm engaged with a negative threshold: %+v", st.Storm)
	}
	if st.QueueDepth != 4 {
		t.Fatalf("queue depth = %d, want 4 (all individual)", st.QueueDepth)
	}
	eng.Drain()

	// Threshold high enough that the burst stays under it: no storm.
	o2, eng2 := engineOver(t, wideTopo(t, 8), Options{StormThreshold: 64})
	for i := 0; i < 4; i++ {
		dep := provision(t, o2, fmt.Sprintf("chain-%d", i))
		eng2.OrchEvent(orch.Event{
			Kind: orch.EventRepairCompleted, Deployment: dep.ID,
			Action: orch.ActionSwapped, Domain: "srlg:1",
		})
	}
	if st := eng2.Status(); st.Storm.Active || st.QueueDepth != 4 {
		t.Fatalf("sub-threshold burst engaged storm: %+v", st)
	}
	eng2.Drain()
}

// TestStormGroupMemberDeleteAndHighWater: a deployment deleted while
// grouped leaves the group (no cancelled-chain re-protect attempts
// counted as failures), and the per-shard high-water mark records the
// spike.
func TestStormGroupMemberDeleteAndHighWater(t *testing.T) {
	o, eng := engineOver(t, wideTopo(t, 10), Options{StormThreshold: 1})
	var deps []*orch.Deployment
	for i := 0; i < 5; i++ {
		deps = append(deps, provision(t, o, fmt.Sprintf("chain-%d", i)))
	}
	for _, dep := range deps {
		eng.OrchEvent(orch.Event{
			Kind: orch.EventRepairCompleted, Deployment: dep.ID,
			Action: orch.ActionSwapped, Domain: "srlg:3",
		})
	}
	if st := eng.Status(); !st.Storm.Active {
		t.Fatalf("storm not active: %+v", st.Storm)
	}
	// Delete a grouped member; its deployment-deleted event must pull
	// it out of the group before the group task runs.
	if err := o.Delete(deps[2].ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	for _, res := range eng.Drain() {
		if res.Outcome == "failed" {
			t.Fatalf("storm drain failed: %+v", res)
		}
		if res.Outcome == "storm-group" && !strings.Contains(res.Detail, "0 failed") {
			t.Fatalf("group ran against a deleted member: %q", res.Detail)
		}
	}
	st := eng.Status()
	if len(st.ShardHighWater) != 1 || st.ShardHighWater[0] < 2 {
		t.Fatalf("shard high-water = %v, want a recorded spike", st.ShardHighWater)
	}
}

// TestStatusSurfacesDebounceCounters: an attached debounce source's
// coalescing stats ride along in Status.
func TestStatusSurfacesDebounceCounters(t *testing.T) {
	o, eng := engineOver(t, wideTopo(t, 6), Options{})
	d := orch.NewFailureDebouncer(o, time.Hour)
	eng.SetDebounceSource(d)
	if st := eng.Status(); st.Debounce == nil || st.Debounce.Events != 0 {
		t.Fatalf("debounce stats = %+v, want zeroed", st.Debounce)
	}
	d.Report(nil, nil) // empty: not counted
	if st := eng.Status(); st.Debounce.Events != 0 {
		t.Fatalf("empty report counted: %+v", st.Debounce)
	}
	// Two coalesced reports, one batch — the counters flow through.
	d.Report([]topology.NodeID{99990}, nil)
	d.Report([]topology.NodeID{99991}, nil)
	if _, err := d.Flush(); err == nil {
		t.Fatal("unknown-node batch should error")
	}
	st := eng.Status()
	if st.Debounce == nil || st.Debounce.Events != 2 || st.Debounce.Batches != 1 || st.Debounce.Coalesced != 1 {
		t.Fatalf("debounce stats = %+v, want Events=2 Batches=1 Coalesced=1", st.Debounce)
	}
	_ = provision(t, o, "chain-1")
}
