package placement

import (
	"testing"

	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/topology"
)

func branchedGraph(t *testing.T) *chain.ForwardingGraph {
	t.Helper()
	// lb(0) -> dpi(1) -> firewall(3)
	//      \-> ids(2) -> firewall(3)
	spec, err := chain.Linear("branchy", "t", "web", 1, 1<<20, "lb", "dpi", "ids", "firewall")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	fg, err := chain.NewForwardingGraph(spec)
	if err != nil {
		t.Fatalf("NewForwardingGraph: %v", err)
	}
	// Rewire linear 0-1-2-3 into the diamond 0->{1,2}->3.
	if err := fg.AddEdge(0, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := fg.AddEdge(1, 3); err != nil { // already linear 1->2? replace below
		t.Fatalf("AddEdge: %v", err)
	}
	return fg
}

func TestCountOEOGraphPerPath(t *testing.T) {
	fg := branchedGraph(t)
	e, o := topology.DomainElectronic, topology.DomainOptical
	// lb optical, dpi electronic, ids electronic, firewall optical.
	domains := []topology.Domain{o, e, e, o}
	paths, worst, err := CountOEOGraph(fg, domains, AccountPerVNF)
	if err != nil {
		t.Fatalf("CountOEOGraph: %v", err)
	}
	if len(paths) < 2 {
		t.Fatalf("paths = %d, want >= 2 (branched)", len(paths))
	}
	// Every path carries between 1 and 2 electronic visits here.
	for _, p := range paths {
		if p.Conversions < 1 || p.Conversions > 2 {
			t.Fatalf("path %v conversions = %d", p.Positions, p.Conversions)
		}
		if p.Conversions > worst {
			t.Fatal("worst is not the maximum")
		}
	}
	// The linear backbone path 0-1-2-3 visits both electronic stages.
	foundBackbone := false
	for _, p := range paths {
		if len(p.Positions) == 4 {
			foundBackbone = true
			if p.Conversions != 2 {
				t.Fatalf("backbone conversions = %d, want 2", p.Conversions)
			}
		}
	}
	if !foundBackbone {
		t.Fatal("backbone path missing")
	}
	if worst != 2 {
		t.Fatalf("worst = %d, want 2", worst)
	}
}

func TestCountOEOGraphPerRun(t *testing.T) {
	fg := branchedGraph(t)
	e := topology.DomainElectronic
	domains := []topology.Domain{e, e, e, e}
	_, worst, err := CountOEOGraph(fg, domains, AccountPerRun)
	if err != nil {
		t.Fatalf("CountOEOGraph: %v", err)
	}
	// All-electronic under per-run accounting: one excursion per path.
	if worst != 1 {
		t.Fatalf("worst = %d, want 1", worst)
	}
}

func TestCountOEOGraphValidation(t *testing.T) {
	fg := branchedGraph(t)
	domains := []topology.Domain{topology.DomainOptical}
	if _, _, err := CountOEOGraph(fg, domains, AccountPerVNF); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, _, err := CountOEOGraph(nil, nil, AccountPerVNF); err == nil {
		t.Fatal("nil graph accepted")
	}
	good := make([]topology.Domain, fg.Len())
	for i := range good {
		good[i] = topology.DomainOptical
	}
	if _, _, err := CountOEOGraph(fg, good, Mode(99)); err == nil {
		t.Fatal("bad mode accepted")
	}
}
