package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/alvc/alvc"
	"github.com/alvc/alvc/internal/topology"
)

// TestMetricsEndpoint checks the scrape surface end to end: valid
// content type, at least 20 families, each announced exactly once.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	status, body := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "web", "firewall", "lb"))
	if status != http.StatusCreated {
		t.Fatalf("provision: %d (%s)", status, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q", ct)
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fam := strings.Fields(line)[2]
		if seen[fam] {
			t.Errorf("family %q announced twice", fam)
		}
		seen[fam] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(seen) < 20 {
		t.Fatalf("only %d metric families, want >= 20", len(seen))
	}
	for _, fam := range []string{
		"alvc_orch_provisions_total",
		"alvc_optimizer_queue_depth",
		"alvc_sdn_path_computations_total",
		"alvc_resilience_standby_chains",
		"alvc_optical_lambda_occupancy_ratio",
	} {
		if !seen[fam] {
			t.Errorf("family %q missing", fam)
		}
	}
}

// newTelemetryServer is newTestServer plus access to the *Server, so
// telemetry tests can reach the plane behind the handler.
func newTelemetryServer(t *testing.T, opts ...alvc.Option) (*httptest.Server, *Server) {
	t.Helper()
	cfg := alvc.DefaultTopology()
	cfg.Racks = 8
	cfg.OPSCount = 24
	cfg.ToRUplinks = 16
	cfg.OPSChords = 2
	arch, err := alvc.New(cfg, opts...)
	if err != nil {
		t.Fatalf("alvc.New: %v", err)
	}
	srv, err := New(arch)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestWatchStreamsRepairDuringFailure opens /v1/watch before injecting
// a failure and asserts the repair event arrives over the live stream.
func TestWatchStreamsRepairDuringFailure(t *testing.T) {
	ts, srv := newTelemetryServer(t)

	status, body := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "web", "firewall", "lb"))
	if status != http.StatusCreated {
		t.Fatalf("provision: %d (%s)", status, body)
	}
	dep := mustUnmarshal[DeploymentJSON](t, body)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/watch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /v1/watch: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	// Wait for the stream's hub subscription, then inject the failure.
	hub := srv.Telemetry().Hub()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watch subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	status, body = do(t, "POST", fmt.Sprintf("%s/v1/failures/%d", ts.URL, dep.SliceOPSs[0]), nil)
	if status != http.StatusOK {
		t.Fatalf("fail node: %d (%s)", status, body)
	}

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() == "event: repair-completed" {
			return
		}
	}
	t.Fatalf("stream ended without a repair-completed event (scan err: %v)", sc.Err())
}

// TestDebouncedFailuresReturn202 covers the debounced route: failure
// posts are accepted (202) into the pending union, repairs run at
// flush, and the flush histogram records the batch.
func TestDebouncedFailuresReturn202(t *testing.T) {
	ts, arch := newTestServer(t, alvc.WithFailureDebounce(time.Hour))

	status, body := do(t, "POST", ts.URL+"/v1/chains", specBody("c1", "t1", "web", "firewall", "lb"))
	if status != http.StatusCreated {
		t.Fatalf("provision: %d (%s)", status, body)
	}
	dep := mustUnmarshal[DeploymentJSON](t, body)

	status, body = do(t, "POST", fmt.Sprintf("%s/v1/failures/%d", ts.URL, dep.SliceOPSs[0]), nil)
	if status != http.StatusAccepted {
		t.Fatalf("fail node: got %d, want 202 (%s)", status, body)
	}
	acc := mustUnmarshal[FailureAcceptedResponse](t, body)
	if !acc.Accepted || acc.PendingNodes != 1 {
		t.Fatalf("unexpected accepted response: %+v", acc)
	}

	// A second report (a distinct node) coalesces into the armed window.
	other := topology.NodeID(0)
	for _, id := range arch.Topology().NodeIDs(topology.KindOPS) {
		if id != dep.SliceOPSs[0] {
			other = id
			break
		}
	}
	batch := fmt.Sprintf(`{"nodes":[%d]}`, other)
	status, body = do(t, "POST", ts.URL+"/v1/failures:batch", []byte(batch))
	if status != http.StatusAccepted {
		t.Fatalf("batch: got %d, want 202 (%s)", status, body)
	}
	if acc = mustUnmarshal[FailureAcceptedResponse](t, body); acc.PendingNodes != 2 {
		t.Fatalf("pending nodes %d, want 2", acc.PendingNodes)
	}

	// Unknown IDs are still rejected up front, debounced or not.
	status, body = do(t, "POST", ts.URL+"/v1/failures/999999", nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown node: got %d, want 404 (%s)", status, body)
	}

	reports, err := arch.FlushFailures()
	if err != nil || len(reports) == 0 {
		t.Fatalf("flush: reports=%d err=%v", len(reports), err)
	}
	if stats, ok := arch.FailureDebounceStats(); !ok || stats.Batches != 1 || stats.Events != 2 {
		t.Fatalf("debounce stats: %+v ok=%v", stats, ok)
	}

	_, metrics := do(t, "GET", ts.URL+"/metrics", nil)
	for _, want := range []string{
		"alvc_orch_debounce_batches_total 1",
		"alvc_orch_debounce_events_total 2",
		"alvc_orch_debounce_flush_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("missing %q in exposition", want)
		}
	}
}
