package placement

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/alvc/alvc/internal/nfv"
	"github.com/alvc/alvc/internal/topology"
)

// fig8Topo builds the Fig. 8 setting: an AL with two optoelectronic
// routers (limited capacity) and two electronic servers. The chain has
// three VNFs; two are light enough for the optical domain, one is not.
func fig8Topo(t *testing.T) (*topology.Topology, *nfv.Ledger, []topology.NodeID, []topology.NodeID) {
	t.Helper()
	topo := topology.New()
	oerCap := topology.Resources{CPUCores: 4, MemoryGB: 8, StorageGB: 32}
	oer1 := topo.AddOPS(true, oerCap)
	oer2 := topo.AddOPS(true, oerCap)
	plain := topo.AddOPS(false, topology.Resources{})
	tor := topo.AddToR(0)
	pm1 := topo.AddPM(0, topology.Resources{CPUCores: 32, MemoryGB: 128, StorageGB: 1024})
	pm2 := topo.AddPM(0, topology.Resources{CPUCores: 32, MemoryGB: 128, StorageGB: 1024})
	link := func(a, b topology.NodeID, k topology.LinkKind) {
		t.Helper()
		if _, err := topo.AddLink(a, b, k, 10, 1); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	link(oer1, oer2, topology.LinkOptical)
	link(oer2, plain, topology.LinkOptical)
	link(tor, oer1, topology.LinkBoundary)
	link(pm1, tor, topology.LinkElectronic)
	link(pm2, tor, topology.LinkElectronic)
	ledger, err := nfv.NewLedger(topo)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return topo, ledger, []topology.NodeID{oer1, oer2}, []topology.NodeID{pm1, pm2}
}

// fig8Chain is secgw (light), firewall (light), dpi (heavy).
func fig8Chain(t *testing.T) []nfv.NFProfile {
	t.Helper()
	chain, err := nfv.ResolveChain([]string{"secgw", "firewall", "dpi"})
	if err != nil {
		t.Fatalf("ResolveChain: %v", err)
	}
	return chain
}

func newCtx(t *testing.T, mode Mode) Context {
	t.Helper()
	topo, ledger, opt, elec := fig8Topo(t)
	ctx, err := NewContext(topo, ledger, opt, elec, fig8Chain(t), mode)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	return ctx
}

func TestCountOEO(t *testing.T) {
	e, o := topology.DomainElectronic, topology.DomainOptical
	cases := []struct {
		domains []topology.Domain
		perVNF  int
		perRun  int
	}{
		{[]topology.Domain{e, o, e}, 2, 2},
		{[]topology.Domain{e, e, o}, 2, 1},
		{[]topology.Domain{o, o, o}, 0, 0},
		{[]topology.Domain{e, e, e}, 3, 1},
		{[]topology.Domain{o, e, o, e, o}, 2, 2},
		{nil, 0, 0},
	}
	for i, tc := range cases {
		if got := CountOEO(tc.domains, AccountPerVNF); got != tc.perVNF {
			t.Errorf("case %d per-vnf = %d, want %d", i, got, tc.perVNF)
		}
		if got := CountOEO(tc.domains, AccountPerRun); got != tc.perRun {
			t.Errorf("case %d per-run = %d, want %d", i, got, tc.perRun)
		}
	}
	if CountOEO([]topology.Domain{e}, Mode(99)) != 0 {
		t.Error("invalid mode should count 0")
	}
}

func TestFig8Scenario(t *testing.T) {
	// The paper's walk-through: all-electronic pays 3 conversions
	// (per-VNF), the paper's greedy moves the two light VNFs optical
	// and pays 1, which equals the optimum.
	ctx := newCtx(t, AccountPerVNF)

	base, err := AllElectronic{}.Place(ctx)
	if err != nil {
		t.Fatalf("AllElectronic: %v", err)
	}
	if base.Conversions != 3 {
		t.Fatalf("all-electronic conversions = %d, want 3", base.Conversions)
	}
	if err := Verify(ctx, base); err != nil {
		t.Fatalf("verify baseline: %v", err)
	}

	greedy, err := OpticalFirst{}.Place(ctx)
	if err != nil {
		t.Fatalf("OpticalFirst: %v", err)
	}
	if greedy.Conversions != 1 {
		t.Fatalf("optical-first conversions = %d, want 1 (DPI stays electronic)", greedy.Conversions)
	}
	if greedy.OpticalCount() != 2 {
		t.Fatalf("optical VNFs = %d, want 2", greedy.OpticalCount())
	}
	if err := Verify(ctx, greedy); err != nil {
		t.Fatalf("verify greedy: %v", err)
	}

	opt, err := Optimal{}.Place(ctx)
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	if opt.Conversions != 1 {
		t.Fatalf("optimal conversions = %d, want 1", opt.Conversions)
	}
	if err := Verify(ctx, opt); err != nil {
		t.Fatalf("verify optimal: %v", err)
	}
	// The ordering the paper claims: baseline ≥ greedy ≥ optimal.
	if !(base.Conversions >= greedy.Conversions && greedy.Conversions >= opt.Conversions) {
		t.Fatalf("ordering violated: %d, %d, %d", base.Conversions, greedy.Conversions, opt.Conversions)
	}
}

func TestPerRunAccountingRewardsAdjacency(t *testing.T) {
	// Chain: dpi, dpi, firewall. Only the firewall fits optical. Under
	// per-run accounting the two adjacent electronic DPIs cost one
	// conversion.
	topo, ledger, opt, elec := fig8Topo(t)
	chain, err := nfv.ResolveChain([]string{"dpi", "dpi", "firewall"})
	if err != nil {
		t.Fatalf("ResolveChain: %v", err)
	}
	ctx, err := NewContext(topo, ledger, opt, elec, chain, AccountPerRun)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	r, err := Optimal{}.Place(ctx)
	if err != nil {
		t.Fatalf("Optimal: %v", err)
	}
	if r.Conversions != 1 {
		t.Fatalf("per-run conversions = %d, want 1", r.Conversions)
	}
	if err := Verify(ctx, r); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestCapacityGateKeepsHeavyVNFsElectronic(t *testing.T) {
	ctx := newCtx(t, AccountPerVNF)
	greedy, err := OpticalFirst{}.Place(ctx)
	if err != nil {
		t.Fatalf("OpticalFirst: %v", err)
	}
	// DPI (index 2) demands 8 cores; OER capacity is 4 — must be
	// electronic.
	if greedy.Domains[2] != topology.DomainElectronic {
		t.Fatalf("heavy DPI placed in %s", greedy.Domains[2])
	}
}

func TestOpticalCapacityExhaustion(t *testing.T) {
	// Shrink optical capacity to hold only one light VNF; greedy must
	// place exactly one optically.
	topo := topology.New()
	oer := topo.AddOPS(true, topology.Resources{CPUCores: 1, MemoryGB: 1, StorageGB: 1})
	plain := topo.AddOPS(false, topology.Resources{})
	tor := topo.AddToR(0)
	pm := topo.AddPM(0, topology.Resources{CPUCores: 64, MemoryGB: 256, StorageGB: 2048})
	for _, l := range []struct {
		a, b topology.NodeID
		k    topology.LinkKind
	}{
		{oer, plain, topology.LinkOptical},
		{tor, oer, topology.LinkBoundary},
		{pm, tor, topology.LinkElectronic},
	} {
		if _, err := topo.AddLink(l.a, l.b, l.k, 10, 1); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	ledger, _ := nfv.NewLedger(topo)
	chain, _ := nfv.ResolveChain([]string{"firewall", "nat", "firewall"})
	ctx, err := NewContext(topo, ledger, []topology.NodeID{oer}, []topology.NodeID{pm}, chain, AccountPerVNF)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	r, err := OpticalFirst{}.Place(ctx)
	if err != nil {
		t.Fatalf("OpticalFirst: %v", err)
	}
	if r.OpticalCount() != 1 {
		t.Fatalf("optical VNFs = %d, want 1 (capacity for one)", r.OpticalCount())
	}
	if r.Conversions != 2 {
		t.Fatalf("conversions = %d, want 2", r.Conversions)
	}
	if err := Verify(ctx, r); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestAllElectronicFailsWithoutServers(t *testing.T) {
	topo, ledger, opt, _ := fig8Topo(t)
	ctx, err := NewContext(topo, ledger, opt, nil, fig8Chain(t), AccountPerVNF)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	if _, err := (AllElectronic{}).Place(ctx); err == nil {
		t.Fatal("placement without servers accepted")
	}
	// Optimal also fails: DPI fits nowhere.
	if _, err := (Optimal{}).Place(ctx); err == nil {
		t.Fatal("optimal without feasible assignment accepted")
	}
}

func TestNewContextValidation(t *testing.T) {
	topo, ledger, opt, elec := fig8Topo(t)
	chain := fig8Chain(t)
	if _, err := NewContext(nil, ledger, opt, elec, chain, AccountPerVNF); err == nil {
		t.Fatal("nil topo accepted")
	}
	if _, err := NewContext(topo, nil, opt, elec, chain, AccountPerVNF); err == nil {
		t.Fatal("nil ledger accepted")
	}
	if _, err := NewContext(topo, ledger, opt, elec, nil, AccountPerVNF); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := NewContext(topo, ledger, opt, elec, chain, Mode(99)); err == nil {
		t.Fatal("bad mode accepted")
	}
	// Electronic host in optical list.
	if _, err := NewContext(topo, ledger, elec, elec, chain, AccountPerVNF); err == nil {
		t.Fatal("PM accepted as optical host")
	}
	// Plain OPS as optical host: find one.
	var plain topology.NodeID
	for _, n := range topo.Nodes(topology.KindOPS) {
		if !n.Optoelectronic {
			plain = n.ID
		}
	}
	if _, err := NewContext(topo, ledger, []topology.NodeID{plain}, elec, chain, AccountPerVNF); err == nil {
		t.Fatal("plain OPS accepted as optical host")
	}
}

func TestOptimalRefusesLongChains(t *testing.T) {
	topo, ledger, opt, elec := fig8Topo(t)
	long := make([]nfv.NFProfile, MaxOptimalNFs+1)
	fw, _ := nfv.ProfileByName("firewall")
	for i := range long {
		long[i] = fw
	}
	ctx, err := NewContext(topo, ledger, opt, elec, long, AccountPerVNF)
	if err != nil {
		t.Fatalf("NewContext: %v", err)
	}
	if _, err := (Optimal{}).Place(ctx); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("long chain error = %v", err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	ctx := newCtx(t, AccountPerVNF)
	good, err := OpticalFirst{}.Place(ctx)
	if err != nil {
		t.Fatalf("OpticalFirst: %v", err)
	}
	// Wrong arity.
	bad := good
	bad.Hosts = good.Hosts[:1]
	if err := Verify(ctx, bad); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Wrong conversions.
	bad = good
	bad.Conversions = 99
	if err := Verify(ctx, bad); err == nil {
		t.Fatal("wrong conversion count accepted")
	}
	// Host outside the allowed list.
	bad = good
	bad.Hosts = append([]topology.NodeID(nil), good.Hosts...)
	bad.Hosts[0] = 9999
	if err := Verify(ctx, bad); err == nil {
		t.Fatal("foreign host accepted")
	}
}

// Property: on random chains, optimal never exceeds greedy, greedy
// never exceeds all-electronic, and every placement verifies.
func TestPlacementOrderingProperty(t *testing.T) {
	names := []string{"firewall", "nat", "secgw", "lb", "dpi", "ids", "wanopt", "cache"}
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		topo, ledger, opt, elec := fig8TopoQuick()
		n := 2 + int(seed%5)
		var chainNames []string
		for i := 0; i < n; i++ {
			chainNames = append(chainNames, names[int(seed/int64(i+1))%len(names)])
		}
		chain, err := nfv.ResolveChain(chainNames)
		if err != nil {
			return false
		}
		ctx, err := NewContext(topo, ledger, opt, elec, chain, AccountPerVNF)
		if err != nil {
			return false
		}
		base, err1 := AllElectronic{}.Place(ctx)
		greedy, err2 := OpticalFirst{}.Place(ctx)
		opt2, err3 := Optimal{}.Place(ctx)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if Verify(ctx, base) != nil || Verify(ctx, greedy) != nil || Verify(ctx, opt2) != nil {
			return false
		}
		return opt2.Conversions <= greedy.Conversions && greedy.Conversions <= base.Conversions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// fig8TopoQuick is fig8Topo without the testing.T plumbing, for
// property tests.
func fig8TopoQuick() (*topology.Topology, *nfv.Ledger, []topology.NodeID, []topology.NodeID) {
	topo := topology.New()
	oerCap := topology.Resources{CPUCores: 4, MemoryGB: 8, StorageGB: 32}
	oer1 := topo.AddOPS(true, oerCap)
	oer2 := topo.AddOPS(true, oerCap)
	tor := topo.AddToR(0)
	pm1 := topo.AddPM(0, topology.Resources{CPUCores: 64, MemoryGB: 256, StorageGB: 2048})
	pm2 := topo.AddPM(0, topology.Resources{CPUCores: 64, MemoryGB: 256, StorageGB: 2048})
	_, _ = topo.AddLink(oer1, oer2, topology.LinkOptical, 100, 1)
	_, _ = topo.AddLink(tor, oer1, topology.LinkBoundary, 10, 1)
	_, _ = topo.AddLink(pm1, tor, topology.LinkElectronic, 10, 1)
	_, _ = topo.AddLink(pm2, tor, topology.LinkElectronic, 10, 1)
	ledger, _ := nfv.NewLedger(topo)
	return topo, ledger, []topology.NodeID{oer1, oer2}, []topology.NodeID{pm1, pm2}
}

func TestModeString(t *testing.T) {
	if AccountPerVNF.String() != "per-vnf" || AccountPerRun.String() != "per-run" {
		t.Fatal("mode strings wrong")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode must render")
	}
}
