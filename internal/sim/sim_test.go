package sim

import (
	"testing"
	"time"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	if err := e.At(3*time.Second, func(time.Duration) { order = append(order, 3) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := e.At(1*time.Second, func(time.Duration) { order = append(order, 1) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := e.At(2*time.Second, func(time.Duration) { order = append(order, 2) }); err != nil {
		t.Fatalf("At: %v", err)
	}
	n := e.Run()
	if n != 3 {
		t.Fatalf("Run processed %d, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestEngineFIFOWithinSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.At(time.Second, func(time.Duration) { order = append(order, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", order)
		}
	}
}

func TestEngineHandlersScheduleMore(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain Handler
	chain = func(now time.Duration) {
		count++
		if count < 10 {
			if err := e.After(time.Millisecond, chain); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	if err := e.After(0, chain); err != nil {
		t.Fatalf("After: %v", err)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 9*time.Millisecond {
		t.Fatalf("Now = %v, want 9ms", e.Now())
	}
}

func TestEngineRejectsPastAndNil(t *testing.T) {
	e := NewEngine()
	if err := e.At(time.Second, func(time.Duration) {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	e.Run()
	if err := e.At(500*time.Millisecond, func(time.Duration) {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
	if err := e.At(2*time.Second, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := e.After(-time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for _, d := range []time.Duration{1, 2, 3, 4} {
		if err := e.At(d*time.Second, func(time.Duration) { fired++ }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	n := e.RunUntil(2 * time.Second)
	if n != 2 || fired != 2 {
		t.Fatalf("RunUntil processed %d fired %d, want 2/2", n, fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	// Horizon beyond the last event drains and advances the clock.
	e.RunUntil(10 * time.Second)
	if e.Now() != 10*time.Second || fired != 4 {
		t.Fatalf("Now = %v fired = %d", e.Now(), fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 5; i++ {
		if err := e.At(time.Duration(i)*time.Second, func(time.Duration) {
			fired++
			if fired == 2 {
				e.Stop()
			}
		}); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stopped)", fired)
	}
	// A subsequent Run resumes.
	e.Run()
	if fired != 5 {
		t.Fatalf("fired = %d after resume, want 5", fired)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}
