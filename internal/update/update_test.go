package update

import (
	"testing"

	"github.com/alvc/alvc/internal/cluster"
	"github.com/alvc/alvc/internal/topology"
)

func churnTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultGenConfig()
	cfg.Racks = 6
	cfg.OPSCount = 8
	cfg.ToRUplinks = 4
	topo, err := topology.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func initialAL(t *testing.T, topo *topology.Topology, service string) cluster.AL {
	t.Helper()
	group := topo.VMsByService()[service]
	al, err := cluster.PaperBuilder{}.Build(topo, group, nil)
	if err != nil {
		t.Fatalf("initial AL: %v", err)
	}
	return al
}

func TestALVCCostJoin(t *testing.T) {
	topo := churnTopo(t)
	m, err := NewModel(topo, cluster.PaperBuilder{})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	al := initialAL(t, topo, "web")
	pm := topo.NodeIDs(topology.KindPhysicalMachine)[0]
	before := len(topo.VMsByService()["web"])
	cost, newAL, err := m.ALVCCost(al, Event{Kind: VMJoin, Service: "web", PM: pm})
	if err != nil {
		t.Fatalf("ALVCCost: %v", err)
	}
	if got := len(topo.VMsByService()["web"]); got != before+1 {
		t.Fatalf("join not applied: %d -> %d", before, got)
	}
	if cost.SwitchesTouched < 1 {
		t.Fatal("join must touch at least one switch")
	}
	if newAL.Size() == 0 {
		t.Fatal("rebuilt AL is empty")
	}
	if !cluster.VerifyAL(topo, topo.VMsByService()["web"], newAL) {
		t.Fatal("rebuilt AL does not cover the grown group")
	}
}

func TestALVCCostLeaveAndEmptyGroup(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	al := initialAL(t, topo, "web")
	group := topo.VMsByService()["web"]
	// Remove all but one, then the last.
	for _, vm := range group[:len(group)-1] {
		var err error
		_, al, err = m.ALVCCost(al, Event{Kind: VMLeave, Service: "web", VM: vm})
		if err != nil {
			t.Fatalf("leave: %v", err)
		}
	}
	last := topo.VMsByService()["web"][0]
	cost, emptied, err := m.ALVCCost(al, Event{Kind: VMLeave, Service: "web", VM: last})
	if err != nil {
		t.Fatalf("final leave: %v", err)
	}
	if emptied.Size() != 0 {
		t.Fatal("AL should be empty after group vanishes")
	}
	if !cost.ALRebuilt || cost.SwitchesTouched == 0 {
		t.Fatalf("releasing a whole AL must touch its switches: %+v", cost)
	}
}

func TestALVCCostMigrate(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	al := initialAL(t, topo, "web")
	group := topo.VMsByService()["web"]
	pms := topo.NodeIDs(topology.KindPhysicalMachine)
	cost, newAL, err := m.ALVCCost(al, Event{Kind: VMMigrate, Service: "web", VM: group[0], PM: pms[len(pms)-1]})
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if cost.SwitchesTouched < 1 {
		t.Fatal("migration must touch at least one switch")
	}
	if !cluster.VerifyAL(topo, topo.VMsByService()["web"], newAL) {
		t.Fatal("AL no longer covers group after migration")
	}
}

func TestFlatCostTouchesWholeFabric(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	pm := topo.NodeIDs(topology.KindPhysicalMachine)[0]
	cost, err := m.FlatCost(Event{Kind: VMJoin, Service: "web", PM: pm})
	if err != nil {
		t.Fatalf("FlatCost: %v", err)
	}
	want := len(topo.NodeIDs(topology.KindToR)) + len(topo.NodeIDs(topology.KindOPS))
	if cost.SwitchesTouched != want {
		t.Fatalf("flat switches = %d, want %d (whole fabric)", cost.SwitchesTouched, want)
	}
}

func TestApplyValidation(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	al := initialAL(t, topo, "web")
	if _, _, err := m.ALVCCost(al, Event{Kind: VMJoin, Service: "web", PM: 9999}); err == nil {
		t.Fatal("join on unknown PM accepted")
	}
	if _, _, err := m.ALVCCost(al, Event{Kind: VMLeave, Service: "web", VM: 9999}); err == nil {
		t.Fatal("leave of unknown VM accepted")
	}
	if _, _, err := m.ALVCCost(al, Event{Kind: EventKind(99), Service: "web"}); err == nil {
		t.Fatal("unknown event kind accepted")
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, nil); err == nil {
		t.Fatal("nil topology accepted")
	}
	topo := churnTopo(t)
	m, err := NewModel(topo, nil)
	if err != nil || m == nil {
		t.Fatal("nil builder should default to PaperBuilder")
	}
}

func TestRunChurnALVCBeatsFlat(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	report, err := m.RunChurn(ChurnConfig{
		Events:    40,
		Service:   "web",
		JoinFrac:  0.3,
		LeaveFrac: 0.3,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if report.Events != 40 {
		t.Fatalf("events = %d", report.Events)
	}
	// The paper's claim: AL-VC's scoped updates cost far less than
	// whole-network updates.
	if report.ALVC.SwitchesTouched >= report.Flat.SwitchesTouched {
		t.Fatalf("AL-VC %d switches >= flat %d — claim violated",
			report.ALVC.SwitchesTouched, report.Flat.SwitchesTouched)
	}
	if report.FinalSize <= 0 {
		t.Fatal("final AL empty after balanced churn")
	}
}

func TestRunChurnDeterministic(t *testing.T) {
	cfgGen := func() *Model {
		m, _ := NewModel(churnTopo(t), cluster.PaperBuilder{})
		return m
	}
	cfg := ChurnConfig{Events: 20, Service: "web", JoinFrac: 0.4, LeaveFrac: 0.2, Seed: 11}
	r1, err := cfgGen().RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	r2, err := cfgGen().RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if r1.ALVC != r2.ALVC || r1.Flat != r2.Flat {
		t.Fatalf("same seed different reports: %+v vs %+v", r1, r2)
	}
}

func TestRunChurnValidation(t *testing.T) {
	topo := churnTopo(t)
	m, _ := NewModel(topo, cluster.PaperBuilder{})
	if _, err := m.RunChurn(ChurnConfig{Events: 0, Service: "web"}); err == nil {
		t.Fatal("zero events accepted")
	}
	if _, err := m.RunChurn(ChurnConfig{Events: 5, Service: "nope"}); err == nil {
		t.Fatal("unknown service accepted")
	}
	if _, err := m.RunChurn(ChurnConfig{Events: 5, Service: "web", JoinFrac: 0.9, LeaveFrac: 0.9}); err == nil {
		t.Fatal("fractions > 1 accepted")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{VMJoin: "join", VMLeave: "leave", VMMigrate: "migrate"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{SwitchesTouched: 2, RulesChanged: 3}
	b := Cost{SwitchesTouched: 1, RulesChanged: 1, ALRebuilt: true}
	sum := a.Add(b)
	if sum.SwitchesTouched != 3 || sum.RulesChanged != 4 || !sum.ALRebuilt {
		t.Fatalf("Add = %+v", sum)
	}
}
