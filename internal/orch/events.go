package orch

import (
	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/trace"
)

// EventKind classifies one orchestrator lifecycle event.
type EventKind int

// Event kinds the orchestrator emits. They are the wake-up sources of
// the background optimization engine (internal/optimizer): repairs may
// leave chains unprotected or drifted, recoveries restore capacity
// that drifted chains and degraded standbys should reclaim, deletes
// cancel pending maintenance.
const (
	// EventRepairCompleted: one deployment's failure reconciliation
	// succeeded; Deployment and Action are set. The chain may have a
	// consumed or missing standby (swap/re-path) or a drifted placement
	// (replace/patch/rebuild).
	EventRepairCompleted EventKind = iota + 1
	// EventPlacementChanged: a VNF migration (MoveNF, re-home)
	// re-provisioned the chain's connectivity; the standby was dropped
	// and must be replanned around the new primary.
	EventPlacementChanged
	// EventNodeRecovered: a node came back; Node is set.
	EventNodeRecovered
	// EventLinkRecovered: a link came back; Link is set.
	EventLinkRecovered
	// EventDeploymentDeleted: the deployment was torn down; pending
	// maintenance for it is moot.
	EventDeploymentDeleted
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EventRepairCompleted:
		return "repair-completed"
	case EventPlacementChanged:
		return "placement-changed"
	case EventNodeRecovered:
		return "node-recovered"
	case EventLinkRecovered:
		return "link-recovered"
	case EventDeploymentDeleted:
		return "deployment-deleted"
	default:
		return "event(?)"
	}
}

// Event is one orchestrator lifecycle notification. Fields beyond Kind
// are set per kind (see the kind constants).
type Event struct {
	Kind       EventKind
	Deployment DeploymentID
	Action     RepairAction
	Node       topology.NodeID
	Link       topology.LinkID
	// Domain names the shared failure domain for repair-completed
	// events: "srlg:…" when the batch cut risk-grouped links, else a
	// unique "batch:N" tag. Every repair of one HandleFailures batch
	// carries the same domain — the optimizer's storm mode groups
	// re-protect work by it.
	Domain string
	// TraceID/SpanID identify the span that emitted the event (the
	// repair span for repair-completed) when tracing is enabled, so
	// consumers on the far side of the event mux — the optimizer's
	// task queue, the /v1/watch stream — continue the causal chain
	// instead of starting orphan traces. Empty/0 when tracing is off.
	TraceID string
	SpanID  trace.SpanID
}

// EventSink receives orchestrator events. Calls are synchronous and
// arrive with no orchestrator locks held, so a sink may call back into
// the orchestrator's read API; implementations must therefore return
// quickly (enqueue, don't execute).
type EventSink interface {
	OrchEvent(Event)
}

// SetEventSink attaches (or, with nil, detaches) the event sink.
// Attaching a sink is purely observational — telemetry bridges and
// event muxes may subscribe freely; whether repairs defer standby
// replanning to a background optimizer is a separate switch
// (SetDeferReprotect), flipped only when an optimizer is actually
// consuming the events.
func (o *Orchestrator) SetEventSink(s EventSink) {
	o.mu.Lock()
	o.sink = s
	o.mu.Unlock()
}

func (o *Orchestrator) eventSink() EventSink {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sink
}

// SetDeferReprotect switches standby replanning between inline and
// deferred mode. Deferred: repair re-runs of the pipeline stop
// planning standbys inline — Yen's search leaves the recovery hot
// path entirely — and instead rely on a background optimizer
// re-protecting the chain from the emitted repair-completed event.
// Provision-time standby planning is unaffected. Only flip this on
// when such an optimizer is subscribed, or repaired chains stay
// unprotected.
func (o *Orchestrator) SetDeferReprotect(v bool) {
	o.mu.Lock()
	o.deferReprotect = v
	o.mu.Unlock()
}

// asyncOptimize reports whether repairs defer standby replanning to a
// background optimizer instead of running Yen's inline.
func (o *Orchestrator) asyncOptimize() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.deferReprotect
}

// emit delivers the event to the attached sink, if any. Callers must
// not hold o.mu or topoMu (the sink may read orchestrator state).
func (o *Orchestrator) emit(ev Event) {
	if s := o.eventSink(); s != nil {
		s.OrchEvent(ev)
	}
}
