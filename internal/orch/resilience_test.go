package orch

import (
	"errors"
	"strings"
	"testing"

	"github.com/alvc/alvc/internal/chain"
	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/topology"
)

// triTopo builds a deterministic dual-rack topology with three fully
// disjoint ToR/OPS routes between the racks:
//
//	PM1 —[A0]— O0 —[B0]— PM2     (latency 1 per link: the primary)
//	PM1 —[A1]— O1 —[B1]— PM2     (latency 2: the standby)
//	PM1 —[A2]— O2 —[B2]— PM2     (latency 3: the spare)
//
// with one web VM on each PM. Routes share only the PMs/VMs, so a
// transit failure on one route must always leave a live standby.
type triIDs struct {
	pm1, pm2, vm1, vm2 topology.NodeID
	tors               [2][3]topology.NodeID // [side][route]
	opss               [3]topology.NodeID
	pmTorLinks         [2][3]topology.LinkID // PM→ToR link per side/route
	torOpsLinks        [2][3]topology.LinkID // ToR→OPS link per side/route
}

func triTopo(t *testing.T) (*topology.Topology, *triIDs) {
	t.Helper()
	topo := topology.New()
	ids := &triIDs{}
	big := topology.Resources{CPUCores: 64, MemoryGB: 256, StorageGB: 1024}
	ids.pm1 = topo.AddPM(0, big)
	ids.pm2 = topo.AddPM(1, big)
	var err error
	if ids.vm1, err = topo.AddVM(ids.pm1, "web"); err != nil {
		t.Fatalf("AddVM: %v", err)
	}
	if ids.vm2, err = topo.AddVM(ids.pm2, "web"); err != nil {
		t.Fatalf("AddVM: %v", err)
	}
	for route := 0; route < 3; route++ {
		ids.tors[0][route] = topo.AddToR(0)
		ids.tors[1][route] = topo.AddToR(1)
		ids.opss[route] = topo.AddOPS(true, topology.Resources{CPUCores: 4, MemoryGB: 8, StorageGB: 16})
		lat := float64(1 + route)
		link := func(a, b topology.NodeID, kind topology.LinkKind) topology.LinkID {
			id, err := topo.AddLink(a, b, kind, 10, lat)
			if err != nil {
				t.Fatalf("AddLink: %v", err)
			}
			return id
		}
		ids.pmTorLinks[0][route] = link(ids.pm1, ids.tors[0][route], topology.LinkElectronic)
		ids.pmTorLinks[1][route] = link(ids.pm2, ids.tors[1][route], topology.LinkElectronic)
		ids.torOpsLinks[0][route] = link(ids.tors[0][route], ids.opss[route], topology.LinkBoundary)
		ids.torOpsLinks[1][route] = link(ids.tors[1][route], ids.opss[route], topology.LinkBoundary)
	}
	return topo, ids
}

func triOrch(t *testing.T, cfg Config) (*Orchestrator, *triIDs) {
	t.Helper()
	topo, ids := triTopo(t)
	cfg.Topo = topo
	if cfg.Policy == nil {
		// Keep VNFs on PMs so OPS/ToR transit failures never classify as
		// host failures.
		cfg.Policy = placement.AllElectronic{}
	}
	o, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o, ids
}

func triSpec(t *testing.T, name string) chain.Spec {
	t.Helper()
	s, err := chain.Linear(name, "tenant-a", "web", 1, 1<<20, "firewall")
	if err != nil {
		t.Fatalf("Linear: %v", err)
	}
	return s
}

func pathContains(path []topology.NodeID, n topology.NodeID) bool {
	for _, p := range path {
		if p == n {
			return true
		}
	}
	return false
}

// TestProvisionPlansDisjointStandby: the standby stage must produce a
// fully transit-disjoint alternate (the second route) at provision
// time, and both primary and standby must be registered in the reverse
// indexes.
func TestProvisionPlansDisjointStandby(t *testing.T) {
	o, ids := triOrch(t, Config{})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if dep.Standby == nil {
		t.Fatal("no standby planned")
	}
	if !dep.Standby.Disjoint {
		t.Fatalf("standby not disjoint: primary %v standby %v", dep.Path, dep.Standby.Path)
	}
	// Primary takes route 0 (cheapest), standby route 1 (next).
	if !pathContains(dep.Path, ids.opss[0]) {
		t.Fatalf("primary %v does not use route 0", dep.Path)
	}
	if !pathContains(dep.Standby.Path, ids.opss[1]) {
		t.Fatalf("standby %v does not use route 1", dep.Standby.Path)
	}
	// Transit disjointness: no shared ToR/OPS.
	primary := make(map[topology.NodeID]bool)
	for _, n := range dep.Path {
		primary[n] = true
	}
	for _, n := range dep.Standby.Path {
		kind := o.topo.Node(n).Kind
		if (kind == topology.KindToR || kind == topology.KindOPS) && primary[n] {
			t.Fatalf("standby shares transit node %d with primary", n)
		}
	}
	// Reverse indexes cover the standby too: a failure that consumes
	// only the standby must still find the deployment.
	for _, n := range []topology.NodeID{ids.tors[0][1], ids.opss[1]} {
		o.mu.Lock()
		_, hit := o.nodeIndex[n][dep.ID]
		o.mu.Unlock()
		if !hit {
			t.Fatalf("standby node %d missing from reverse index", n)
		}
	}
	o.mu.Lock()
	_, linkHit := o.linkIndex[ids.torOpsLinks[0][1]][dep.ID]
	o.mu.Unlock()
	if !linkHit {
		t.Fatal("standby link missing from reverse link index")
	}
}

// TestStandbySwapZeroPathComputations is the tentpole acceptance test:
// a transit failure on the primary path, with a live standby, must
// repair by promoting the standby — performing zero shortest-path
// computations (asserted via the controller's counting hook), keeping
// VC/slice/instances untouched, and consuming the standby.
func TestStandbySwapZeroPathComputations(t *testing.T) {
	o, ids := triOrch(t, Config{Wavelengths: 2})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if dep.Standby == nil {
		t.Fatal("no standby planned")
	}
	wantPath := append([]topology.NodeID(nil), dep.Standby.Path...)
	victim := ids.tors[0][0] // primary-route ToR: pure transit
	if !pathContains(dep.Path, victim) {
		t.Fatalf("test setup: victim %d not on primary %v", victim, dep.Path)
	}

	before := o.Controller().PathComputations()
	reports, err := o.HandleNodeFailure(victim)
	if err != nil {
		t.Fatalf("HandleNodeFailure: %v", err)
	}
	after := o.Controller().PathComputations()
	if after != before {
		t.Fatalf("standby swap ran %d shortest-path computations, want 0", after-before)
	}
	if len(reports) != 1 || reports[0].ID != dep.ID || reports[0].Action != ActionSwapped {
		t.Fatalf("reports = %+v, want one swapped for %d", reports, dep.ID)
	}

	got := o.Deployment(dep.ID)
	if got.State != StateActive || got.Repairs != 1 {
		t.Fatalf("after swap: state=%s repairs=%d", got.State, got.Repairs)
	}
	if len(got.Path) != len(wantPath) {
		t.Fatalf("path = %v, want promoted standby %v", got.Path, wantPath)
	}
	for i := range wantPath {
		if got.Path[i] != wantPath[i] {
			t.Fatalf("path = %v, want promoted standby %v", got.Path, wantPath)
		}
	}
	if got.Standby != nil {
		t.Fatalf("standby not consumed by swap: %+v", got.Standby)
	}
	// Identity untouched: same VC, slice, instances.
	if got.VC.ID != dep.VC.ID || got.Slice.ID != dep.Slice.ID {
		t.Fatal("swap touched cluster or slice identity")
	}
	for i, id := range got.Instances {
		if id != dep.Instances[i] {
			t.Fatalf("swap replaced instance %d: %d -> %d", i, dep.Instances[i], id)
		}
	}
	// Rules follow the standby; wavelength retuned onto its links with
	// the grace window closed.
	if n := len(o.Controller().RulesForFlow(got.FlowKey())); n != len(got.Path) {
		t.Fatalf("rules = %d, want %d", n, len(got.Path))
	}
	if o.WDM().InGrace(got.FlowKey()) {
		t.Fatal("two-λ grace window left open after swap")
	}
	if a, ok := o.WDM().AssignmentOf(got.FlowKey()); !ok || len(a.Links) == 0 {
		t.Fatalf("no wavelength on promoted path: %+v ok=%v", a, ok)
	}
}

// TestColdRepathWhenStandbyDisabled: with planning disabled
// (StandbyK < 0) the same transit failure must fall back to the cold
// re-path — shortest-path computations happen at recovery time.
func TestColdRepathWhenStandbyDisabled(t *testing.T) {
	o, ids := triOrch(t, Config{StandbyK: -1})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if dep.Standby != nil {
		t.Fatalf("standby planned despite StandbyK<0: %+v", dep.Standby)
	}
	before := o.Controller().PathComputations()
	reports, err := o.HandleNodeFailure(ids.tors[0][0])
	if err != nil {
		t.Fatalf("HandleNodeFailure: %v", err)
	}
	if len(reports) != 1 || reports[0].Action != ActionRepathed {
		t.Fatalf("reports = %+v, want repathed", reports)
	}
	if o.Controller().PathComputations() == before {
		t.Fatal("cold repath ran no shortest-path computation — counting hook broken?")
	}
	got := o.Deployment(dep.ID)
	if pathContains(got.Path, ids.tors[0][0]) {
		t.Fatalf("failed ToR still on path %v", got.Path)
	}
}

// TestLinkFailureSwapsToStandby: a dead link on the primary data path
// must produce a per-chain report exactly like a node failure, and with
// a live standby the repair is a swap with zero shortest-path runs.
func TestLinkFailureSwapsToStandby(t *testing.T) {
	o, ids := triOrch(t, Config{})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	victim := ids.torOpsLinks[0][0] // primary boundary link
	before := o.Controller().PathComputations()
	reports, err := o.HandleLinkFailure(victim)
	if err != nil {
		t.Fatalf("HandleLinkFailure: %v", err)
	}
	if o.Controller().PathComputations() != before {
		t.Fatal("link-failure standby swap ran shortest-path computations")
	}
	if len(reports) != 1 || reports[0].ID != dep.ID || reports[0].Action != ActionSwapped {
		t.Fatalf("reports = %+v, want one swapped for %d", reports, dep.ID)
	}
	got := o.Deployment(dep.ID)
	if got.State != StateActive || got.Repairs != 1 {
		t.Fatalf("after link swap: state=%s repairs=%d", got.State, got.Repairs)
	}
	if pathContains(got.Path, ids.opss[0]) {
		t.Fatalf("path %v still crosses the dead link's route", got.Path)
	}
	// Recovery of the link is accepted and idempotent for deployments.
	if err := o.RecoverLink(victim); err != nil {
		t.Fatalf("RecoverLink: %v", err)
	}
}

// TestStandbyOnlyFailureReplansStandby: a failure that consumes only
// the standby (primary untouched) must replan the anticipation without
// counting as a repair, and the new standby must avoid the dead node.
func TestStandbyOnlyFailureReplansStandby(t *testing.T) {
	o, ids := triOrch(t, Config{})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	victim := ids.tors[0][1] // standby-route ToR; not on primary, not in slice...
	if pathContains(dep.Path, victim) {
		t.Fatalf("test setup: victim %d on primary %v", victim, dep.Path)
	}
	if !pathContains(dep.Standby.Path, victim) {
		t.Fatalf("test setup: victim %d not on standby %v", victim, dep.Standby.Path)
	}
	if dep.Slice.Contains(victim) {
		t.Fatalf("test setup: victim %d in slice", victim)
	}
	pathBefore := append([]topology.NodeID(nil), dep.Path...)

	reports, err := o.HandleNodeFailure(victim)
	if err != nil {
		t.Fatalf("HandleNodeFailure: %v", err)
	}
	if len(reports) != 1 || reports[0].ID != dep.ID || reports[0].Action != ActionRestandby {
		t.Fatalf("reports = %+v, want one restandby for %d", reports, dep.ID)
	}
	got := o.Deployment(dep.ID)
	if got.Repairs != 0 {
		t.Fatalf("restandby counted as a repair: %d", got.Repairs)
	}
	for i := range pathBefore {
		if got.Path[i] != pathBefore[i] {
			t.Fatalf("primary path changed: %v -> %v", pathBefore, got.Path)
		}
	}
	if got.Standby == nil {
		t.Fatal("standby not replanned")
	}
	if pathContains(got.Standby.Path, victim) {
		t.Fatalf("replanned standby %v still uses dead node %d", got.Standby.Path, victim)
	}
	// The third route is fully disjoint, so the replan should find it.
	if !pathContains(got.Standby.Path, ids.opss[2]) {
		t.Fatalf("replanned standby %v does not use the spare route", got.Standby.Path)
	}
}

// TestRackEventSingleBatchReconciliation: a simulated rack event (a ToR
// plus its PMs) must run as one batch reconciliation — each affected
// chain visited at most once, classified against the union of dead
// resources.
func TestRackEventSingleBatchReconciliation(t *testing.T) {
	o := newOrch(t)
	var deps []*Deployment
	for _, svc := range []string{"web", "mapreduce", "sns"} {
		spec, err := chain.Linear("chain-"+svc, "t-"+svc, svc, 1, 1<<20, "firewall", "nat")
		if err != nil {
			t.Fatalf("Linear: %v", err)
		}
		dep, err := o.Provision(spec)
		if err != nil {
			t.Fatalf("Provision %s: %v", svc, err)
		}
		deps = append(deps, dep)
	}
	repairsBefore := make(map[DeploymentID]int)
	for _, dep := range o.Deployments() {
		repairsBefore[dep.ID] = dep.Repairs
	}

	// The rack: one ToR and every PM wired to it.
	var tor topology.NodeID
	for _, id := range o.topo.NodeIDs(topology.KindToR) {
		tor = id
		break
	}
	rack := []topology.NodeID{tor}
	for _, pm := range o.topo.NodeIDs(topology.KindPhysicalMachine) {
		for _, pt := range o.topo.ToRsOfPM(pm) {
			if pt == tor {
				rack = append(rack, pm)
				break
			}
		}
	}
	if len(rack) < 2 {
		t.Fatalf("test setup: rack has no PMs under ToR %d", tor)
	}

	reports, err := o.HandleFailures(rack, nil)
	if err != nil &&
		!strings.Contains(err.Error(), "no live VMs") && !errors.Is(err, ErrBusy) {
		// A rack event may legitimately kill a service's only VMs; any
		// other failure is a bug.
		t.Fatalf("HandleFailures: %v", err)
	}
	// Each chain visited at most once: no duplicate IDs in the reports.
	seen := make(map[DeploymentID]bool)
	for _, rep := range reports {
		if seen[rep.ID] {
			t.Fatalf("deployment %d visited twice in one batch: %+v", rep.ID, reports)
		}
		seen[rep.ID] = true
	}
	// And at most one reconciliation landed per chain.
	for _, dep := range o.Deployments() {
		if delta := dep.Repairs - repairsBefore[dep.ID]; delta > 1 {
			t.Fatalf("deployment %d repaired %d times in one batch event", dep.ID, delta)
		}
	}
	// Chains the event did not touch must not be reported.
	for _, dep := range deps {
		if seen[dep.ID] {
			continue
		}
		got := o.Deployment(dep.ID)
		if got.Repairs != repairsBefore[dep.ID] {
			t.Fatalf("unreported deployment %d gained repairs", dep.ID)
		}
	}
}

// TestRackEventStrandedVMsExcludedFromRebuild: a rack event that kills
// an endpoint's host forces a rebuild; VMs stranded by the same event
// (host up, but its only ToR dead) must be excluded from the rebuild's
// clustering input instead of failing the vertex-cover projection.
func TestRackEventStrandedVMsExcludedFromRebuild(t *testing.T) {
	topo, ids := triTopo(t)
	// A third web VM on a PM single-homed to the primary route's ToR:
	// killing that ToR strands it without downing its host.
	pm3 := topo.AddPM(0, topology.Resources{CPUCores: 64, MemoryGB: 256, StorageGB: 1024})
	vm3, err := topo.AddVM(pm3, "web")
	if err != nil {
		t.Fatalf("AddVM: %v", err)
	}
	if _, err := topo.AddLink(pm3, ids.tors[0][0], topology.LinkElectronic, 10, 1); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	o, err := New(Config{Topo: topo, Policy: placement.AllElectronic{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	// The rack event: the shared ToR plus the src endpoint's host.
	srcHost := o.topo.Node(dep.Path[0]).Host
	reports, err := o.HandleFailures([]topology.NodeID{ids.tors[0][0], srcHost}, nil)
	if err != nil {
		t.Fatalf("HandleFailures: %v", err)
	}
	var rep *RepairReport
	for i := range reports {
		if reports[i].ID == dep.ID {
			rep = &reports[i]
		}
	}
	if rep == nil || !rep.Succeeded() {
		t.Fatalf("reports = %+v, want a successful repair for %d", reports, dep.ID)
	}
	got := o.Deployment(dep.ID)
	if got.State != StateActive {
		t.Fatalf("state = %s, want active", got.State)
	}
	for _, n := range got.Path {
		if n == vm3 || n == srcHost || n == ids.tors[0][0] {
			t.Fatalf("rebuilt path %v uses a dead or stranded node %d", got.Path, n)
		}
	}
}

// TestHandleFailuresUnknownResourceRejectedAtomically: an unknown node
// or link anywhere in the batch must reject the whole event before any
// resource is marked down.
func TestHandleFailuresUnknownResourceRejectedAtomically(t *testing.T) {
	o, ids := triOrch(t, Config{})
	if _, err := o.Provision(triSpec(t, "chain-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if _, err := o.HandleFailures([]topology.NodeID{ids.tors[0][0], 99999}, nil); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := o.HandleFailures(nil, []topology.LinkID{99999}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if n := o.topo.Node(ids.tors[0][0]); n.Down {
		t.Fatal("batch with unknown member still marked nodes down")
	}
	reports, err := o.HandleFailures(nil, nil)
	if err != nil || len(reports) != 0 {
		t.Fatalf("empty failure set: reports=%v err=%v", reports, err)
	}
}

// TestSwapThenColdRepathAfterStandbyConsumed: once a swap consumed the
// standby, a second primary failure must fall back to the cold re-path
// (which replans a fresh standby as part of its pipeline suffix).
func TestSwapThenColdRepathAfterStandbyConsumed(t *testing.T) {
	o, ids := triOrch(t, Config{})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if reports, err := o.HandleNodeFailure(ids.tors[0][0]); err != nil || reports[0].Action != ActionSwapped {
		t.Fatalf("first failure: reports=%+v err=%v", reports, err)
	}
	// Now on route 1 with no standby. Fail its ToR: cold repath to
	// route 2, and the suffix replans a standby (none remains — routes
	// 0 and 1 are dead — so it stays nil, best-effort).
	reports, err := o.HandleNodeFailure(ids.tors[0][1])
	if err != nil {
		t.Fatalf("second failure: %v", err)
	}
	if len(reports) != 1 || reports[0].Action != ActionRepathed {
		t.Fatalf("second failure reports = %+v, want repathed", reports)
	}
	got := o.Deployment(dep.ID)
	if got.State != StateActive || got.Repairs != 2 {
		t.Fatalf("after two failures: state=%s repairs=%d", got.State, got.Repairs)
	}
	if !pathContains(got.Path, ids.opss[2]) {
		t.Fatalf("path %v not on the spare route", got.Path)
	}
}

// TestNodeAndLinkImpact: the blast-radius queries must report each
// chain with the exact roles a resource plays, and nothing for
// untouched resources.
func TestNodeAndLinkImpact(t *testing.T) {
	o, ids := triOrch(t, Config{})
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	// Primary-route ToR: role path only.
	entries := o.NodeImpact(ids.tors[0][0])
	if len(entries) != 1 || entries[0].ID != dep.ID {
		t.Fatalf("NodeImpact(primary ToR) = %+v", entries)
	}
	if len(entries[0].Roles) != 1 || entries[0].Roles[0] != "path" {
		t.Fatalf("roles = %v, want [path]", entries[0].Roles)
	}
	// Standby-route OPS: on the standby only (the AL cover needs just
	// the primary route's OPS).
	entries = o.NodeImpact(ids.opss[1])
	if len(entries) != 1 || len(entries[0].Roles) != 1 || entries[0].Roles[0] != "standby" {
		t.Fatalf("NodeImpact(standby OPS) = %+v, want roles [standby]", entries)
	}
	// A slice OPS reports the slice role.
	sliceEntries := o.NodeImpact(dep.Slice.OPSs[0])
	if len(sliceEntries) != 1 {
		t.Fatalf("NodeImpact(slice OPS) = %+v", sliceEntries)
	}
	hasSlice := false
	for _, r := range sliceEntries[0].Roles {
		if r == "slice" {
			hasSlice = true
		}
	}
	if !hasSlice {
		t.Fatalf("slice OPS roles = %v, want slice included", sliceEntries[0].Roles)
	}
	// VNF host PM: host + path.
	hostEntries := o.NodeImpact(dep.Placement.Hosts[0])
	if len(hostEntries) != 1 {
		t.Fatalf("NodeImpact(host) = %+v", hostEntries)
	}
	hasHost := false
	for _, r := range hostEntries[0].Roles {
		if r == "host" {
			hasHost = true
		}
	}
	if !hasHost {
		t.Fatalf("host roles = %v, want host included", hostEntries[0].Roles)
	}
	// Spare-route ToR: zero blast radius.
	if entries := o.NodeImpact(ids.tors[0][2]); len(entries) != 0 {
		t.Fatalf("NodeImpact(spare ToR) = %+v, want empty", entries)
	}
	// Link variants.
	if entries := o.LinkImpact(ids.torOpsLinks[0][0]); len(entries) != 1 ||
		len(entries[0].Roles) != 1 || entries[0].Roles[0] != "path" {
		t.Fatalf("LinkImpact(primary link) = %+v", entries)
	}
	if entries := o.LinkImpact(ids.torOpsLinks[0][1]); len(entries) != 1 ||
		len(entries[0].Roles) != 1 || entries[0].Roles[0] != "standby" {
		t.Fatalf("LinkImpact(standby link) = %+v", entries)
	}
	if entries := o.LinkImpact(ids.torOpsLinks[0][2]); len(entries) != 0 {
		t.Fatalf("LinkImpact(spare link) = %+v, want empty", entries)
	}
	// After delete, every blast radius is empty.
	if err := o.Delete(dep.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if entries := o.NodeImpact(ids.tors[0][0]); len(entries) != 0 {
		t.Fatalf("NodeImpact after delete = %+v", entries)
	}
}
