// NFC orchestration: the Fig. 5 scenario — three per-application
// service chains (blue, black, green), each with its own NF sequence,
// orchestrated over one shared AL-VC substrate. Each chain gets its own
// virtual cluster, abstraction layer and flow rules; the ALs are
// pairwise disjoint (one OPS never serves two chains).
package main

import (
	"fmt"
	"log"

	"github.com/alvc/alvc"
)

func main() {
	cfg := alvc.DefaultTopology()
	cfg.Racks = 8
	cfg.OPSCount = 24
	cfg.ToRUplinks = 16
	cfg.OPSChords = 2
	cfg.Services = []string{"web", "mapreduce", "sns"}

	arch, err := alvc.New(cfg)
	if err != nil {
		log.Fatalf("nfc-orchestration: %v", err)
	}

	// The three chains of Fig. 5: distinct NF sets per application.
	chains := []struct {
		name, tenant, service string
		nfs                   []string
	}{
		{"blue", "tenant-blue", "web", []string{"secgw", "firewall", "dpi"}},
		{"black", "tenant-black", "mapreduce", []string{"firewall", "wanopt"}},
		{"green", "tenant-green", "sns", []string{"secgw", "lb", "firewall"}},
	}

	var deps []*alvc.Deployment
	for _, c := range chains {
		spec, err := alvc.LinearChain(c.name, c.tenant, c.service, 2.0, 1<<20, c.nfs...)
		if err != nil {
			log.Fatalf("nfc-orchestration: spec %s: %v", c.name, err)
		}
		dep, err := arch.Deploy(spec)
		if err != nil {
			log.Fatalf("nfc-orchestration: deploy %s: %v", c.name, err)
		}
		deps = append(deps, dep)
		fmt.Printf("%-6s %v\n", c.name, c.nfs)
		fmt.Printf("       AL: %d OPSs   path: %d hops   conversions: %d\n",
			dep.VC.AL.Size(), len(dep.Path)-1, dep.Conversions)
	}

	// Verify the paper's disjointness rule across the three chains.
	owned := map[alvc.NodeID]string{}
	for i, dep := range deps {
		for _, ops := range dep.VC.AL.OPSs {
			if prev, clash := owned[ops]; clash {
				log.Fatalf("OPS %d serves both %s and %s — disjointness violated!",
					ops, prev, chains[i].name)
			}
			owned[ops] = chains[i].name
		}
	}
	fmt.Printf("\n%d OPSs allocated across 3 chains — all abstraction layers disjoint ✓\n", len(owned))

	// Flow rules are isolated per chain: inspect the controller.
	ctrl := arch.Orchestrator().Controller()
	for i, dep := range deps {
		rules := ctrl.RulesForFlow(dep.FlowKey())
		fmt.Printf("%-6s flow rules installed: %d (one per hop)\n", chains[i].name, len(rules))
	}
}
