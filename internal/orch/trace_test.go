package orch

import (
	"context"
	"testing"
	"time"

	"github.com/alvc/alvc/internal/topology"
	"github.com/alvc/alvc/internal/trace"
)

func newTestTracer() *trace.Tracer {
	return trace.NewTracer(trace.NewStore(trace.StoreOptions{}))
}

// TestProvisionTraceStageSpans: a traced provision records one
// "provision" span under the caller's span, with one child span per
// executed pipeline stage.
func TestProvisionTraceStageSpans(t *testing.T) {
	o := newOrch(t)
	tr := newTestTracer()
	o.SetTracer(tr)

	root := tr.StartTrace("prov-1")
	dep, err := o.ProvisionCtx(trace.ContextWith(context.Background(), root), webSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("ProvisionCtx: %v", err)
	}
	spans, dropped, ok := tr.Store().Trace("prov-1")
	if !ok || dropped != 0 {
		t.Fatalf("Trace(prov-1) = (%d spans, %d dropped, %v)", len(spans), dropped, ok)
	}
	var prov *trace.Span
	for i := range spans {
		if spans[i].Kind == trace.KindProvision {
			prov = &spans[i]
		}
	}
	if prov == nil {
		t.Fatalf("no provision span in %+v", spans)
	}
	if prov.Parent != root.SpanID || prov.Dep != int(dep.ID) || prov.Err != "" {
		t.Fatalf("provision span = %+v, want child of %d for deployment %d", prov, root.SpanID, dep.ID)
	}
	stages := map[string]bool{}
	for _, sp := range spans {
		if sp.Kind == trace.KindStage {
			if sp.Parent != prov.SpanID {
				t.Fatalf("stage %q parented under %d, want provision span %d", sp.Name, sp.Parent, prov.SpanID)
			}
			stages[sp.Name] = true
		}
	}
	want := []string{"cluster", "slice", "placement", "instantiate", "path", "standby", "wdm", "rules"}
	if len(stages) != len(want) {
		t.Fatalf("stage spans = %v, want %v", stages, want)
	}
	for _, name := range want {
		if !stages[name] {
			t.Fatalf("missing stage span %q in %v", name, stages)
		}
	}

	// The provision trace is reachable through the chain index.
	chains := tr.Store().ChainTraces(int(dep.ID))
	if len(chains) != 1 || chains[0].ID != "prov-1" {
		t.Fatalf("ChainTraces = %+v, want [prov-1]", chains)
	}
}

// TestUntracedProvisionRecordsNothing: without a tracer attached the
// same entry points leave the store untouched (and there is no store
// to touch — the orchestrator's tracer is nil).
func TestUntracedProvisionRecordsNothing(t *testing.T) {
	o := newOrch(t)
	if _, err := o.ProvisionCtx(context.Background(), webSpec(t, "chain-1")); err != nil {
		t.Fatalf("ProvisionCtx: %v", err)
	}
	// Attach a tracer after the fact: the earlier provision must not
	// have queued anything into it.
	tr := newTestTracer()
	o.SetTracer(tr)
	if stats := tr.Store().Stats(); stats.SpansRecorded != 0 {
		t.Fatalf("stats = %+v, want empty store", stats)
	}
}

// TestDebouncedStormBatchSpanLinksParents is the exactly-once causal
// chain across the debouncer: two failure reports from two different
// traces coalesce into one flush whose batch span continues the first
// report's trace and links the second, and the single repair it
// triggers records exactly one repair span inside that same trace.
func TestDebouncedStormBatchSpanLinksParents(t *testing.T) {
	o, ids := triOrch(t, Config{})
	tr := newTestTracer()
	o.SetTracer(tr)
	dep, err := o.Provision(triSpec(t, "chain-1"))
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}

	d := NewFailureDebouncer(o, time.Hour)
	d.SetTracer(tr)
	ctxA := trace.ContextWith(context.Background(), tr.StartTrace("report-a"))
	ctxB := trace.ContextWith(context.Background(), tr.StartTrace("report-b"))
	d.ReportCtx(ctxA, nil, []topology.LinkID{ids.torOpsLinks[0][0]})
	d.ReportCtx(ctxB, nil, []topology.LinkID{ids.torOpsLinks[0][1]})

	reports, err := d.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if len(reports) != 1 || reports[0].ID != dep.ID {
		t.Fatalf("reports = %+v, want exactly one for deployment %d", reports, dep.ID)
	}
	if reports[0].TraceID != "report-a" {
		t.Fatalf("report trace = %q, want the batch's trace report-a", reports[0].TraceID)
	}

	spans, _, ok := tr.Store().Trace("report-a")
	if !ok {
		t.Fatal("batch trace report-a not in store")
	}
	var batch, repair *trace.Span
	repairs := 0
	for i := range spans {
		switch spans[i].Kind {
		case trace.KindBatch:
			batch = &spans[i]
		case trace.KindRepair:
			repair = &spans[i]
			repairs++
		}
	}
	if batch == nil {
		t.Fatalf("no batch span in %+v", spans)
	}
	if len(batch.Links) != 1 || batch.Links[0] != "report-b" {
		t.Fatalf("batch links = %v, want [report-b]", batch.Links)
	}
	if repairs != 1 {
		t.Fatalf("repair spans = %d, want exactly 1 (exactly-once repair)", repairs)
	}
	if repair.Parent != batch.SpanID || repair.Dep != int(dep.ID) {
		t.Fatalf("repair span = %+v, want child of batch %d for deployment %d", repair, batch.SpanID, dep.ID)
	}
	if repair.TraceID != reports[0].TraceID || repair.SpanID != reports[0].SpanID {
		t.Fatalf("report identity (%s,%d) != repair span (%s,%d)",
			reports[0].TraceID, reports[0].SpanID, repair.TraceID, repair.SpanID)
	}
}

// TestReportCtxWithoutSpanStaysUnparented: reports arriving without a
// span in their context flush under a fresh trace with no links.
func TestReportCtxWithoutSpanStaysUnparented(t *testing.T) {
	o, ids := triOrch(t, Config{})
	tr := newTestTracer()
	o.SetTracer(tr)
	if _, err := o.Provision(triSpec(t, "chain-1")); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	d := NewFailureDebouncer(o, time.Hour)
	d.SetTracer(tr)
	d.Report(nil, []topology.LinkID{ids.torOpsLinks[0][0]})
	if _, err := d.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	sums := tr.Store().Traces(trace.Query{Kind: trace.KindBatch})
	if len(sums) != 1 {
		t.Fatalf("batch traces = %+v, want one fresh trace", sums)
	}
	spans, _, _ := tr.Store().Trace(sums[0].ID)
	for _, sp := range spans {
		if sp.Kind == trace.KindBatch && (sp.Parent != 0 || len(sp.Links) != 0) {
			t.Fatalf("unparented batch span = %+v, want root with no links", sp)
		}
	}
}
