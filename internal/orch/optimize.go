package orch

// The background-optimization entry points: the orchestrator-side
// operations the maintenance engine (internal/optimizer) executes off
// the request and recovery hot paths. Each takes the per-deployment
// exclusive-operation guard, so a task colliding with an in-flight
// repair/move/delete surfaces as ErrBusy and is requeued by the
// engine rather than interleaving teardowns.

import (
	"context"
	"fmt"

	"github.com/alvc/alvc/internal/nfv"
	"github.com/alvc/alvc/internal/optical"
	"github.com/alvc/alvc/internal/placement"
	"github.com/alvc/alvc/internal/resilience"
	"github.com/alvc/alvc/internal/topology"
)

// ReProtect ensures the deployment has the best standby the current
// topology allows: a standby that is alive and disjoint is left alone
// (replanned=false); anything else — consumed, dead, or planned
// non-disjoint around an outage that has since healed — is replanned
// with Yen's k-shortest. This is the cold-repair standby work moved
// off the recovery path: repairs drop the standby and report, and this
// call restores protection in the background.
//
// The returned standby is a snapshot (nil when no alternate route
// exists or planning is disabled). An error with replanned=true means
// the chain is left unprotected; ErrBusy means a concurrent exclusive
// operation owns the deployment and the caller should retry.
func (o *Orchestrator) ReProtect(id DeploymentID) (sb *resilience.Standby, replanned bool, err error) {
	dep, err := o.beginExclusive(id)
	if err != nil {
		return nil, false, fmt.Errorf("orch: re-protect: %w", err)
	}
	defer o.endExclusive(id)
	o.topoMu.RLock()
	defer o.topoMu.RUnlock()
	return o.reProtectDep(dep, nil)
}

// reProtectDep is ReProtect's body, shared with ReProtectGroup. The
// caller holds the deployment's exclusive claim and topoMu.RLock —
// ReProtectGroup holds the topology lock once across a whole domain
// group, so the body must not reacquire it. When gp is non-nil the
// standby is planned through the group's shared candidate memo;
// otherwise per-chain.
func (o *Orchestrator) reProtectDep(dep *Deployment, gp *resilience.GroupPlanner) (sb *resilience.Standby, replanned bool, err error) {
	id := dep.ID
	o.mu.Lock()
	cur := dep.Standby.Clone()
	o.mu.Unlock()
	alive := cur != nil && resilience.PathAlive(o.topo, cur.Path)
	if alive && cur.Disjoint {
		return cur, false, nil
	}
	p := o.pipelineFrom(context.Background(), dep)
	var planErr error
	if gp != nil {
		planErr = p.planStandbyGroup(gp)
	} else {
		planErr = p.planStandby()
	}
	if planErr != nil {
		if alive {
			// The current standby still works; a failed search for a
			// better one must not strip the protection the chain has.
			return cur, false, nil
		}
		// The standby is dead (or absent): drop it so the reverse index
		// stops routing failures at a stale alternate.
		o.mu.Lock()
		o.unindexLocked(dep)
		dep.Standby = nil
		o.indexLocked(dep)
		o.mu.Unlock()
		return nil, true, fmt.Errorf("orch: re-protect %d: chain left unprotected: %w", id, planErr)
	}
	o.mu.Lock()
	o.unindexLocked(dep)
	dep.Standby = p.standby
	o.indexLocked(dep)
	sb = dep.Standby.Clone()
	o.mu.Unlock()
	return sb, true, nil
}

// Rehome undoes rebuild-induced placement drift: it computes a fresh
// placement for the chain under the current topology (as if the chain
// were lifted and re-placed, so capacity currently held by its own
// instances counts as available) and, when the fresh placement scores
// better than the current one by at least margin conversions, migrates
// the differing VNFs and re-provisions connectivity make-before-break.
// Placements within the margin are left alone — the hysteresis that
// keeps repeated re-home passes from oscillating. margin is clamped to
// at least 1 (a move must strictly improve the score).
//
// The operation is transactional like MoveNF: a failure after any
// migration moves the instances back, and only an impossible restore
// falls back to an in-place rebuild.
func (o *Orchestrator) Rehome(id DeploymentID, margin int) (moved bool, err error) {
	moved, rebuilt, err := o.rehome(id, margin)
	// Emit only after rehome released its locks — the sink contract
	// allows callbacks into the orchestrator's read API.
	switch {
	case rebuilt:
		// The restore-impossible fallback rebuilt the chain in place;
		// that rebuild deferred its standby, so the re-protection must
		// be enqueued like any other repair.
		o.emit(Event{Kind: EventRepairCompleted, Deployment: id, Action: ActionRebuilt})
	case moved && err == nil:
		o.emit(Event{Kind: EventPlacementChanged, Deployment: id})
	}
	return moved, err
}

// rehome is Rehome without the event emission; rebuilt reports that
// the rebuild-in-place fallback ran and left the chain active.
func (o *Orchestrator) rehome(id DeploymentID, margin int) (moved, rebuilt bool, err error) {
	if margin < 1 {
		margin = 1
	}
	dep, err := o.beginExclusive(id)
	if err != nil {
		return false, false, fmt.Errorf("orch: rehome: %w", err)
	}
	defer o.endExclusive(id)
	o.topoMu.RLock()
	defer o.topoMu.RUnlock()

	profiles, err := nfv.ResolveChain(dep.Spec.NFNames())
	if err != nil {
		return false, false, fmt.Errorf("orch: rehome %d: %w", id, err)
	}
	for i, ref := range dep.Spec.NFs {
		if !ref.Demand.IsZero() {
			profiles[i].Demand = ref.Demand
		}
	}

	o.mu.Lock()
	curPlace := dep.Placement
	curHosts := append([]topology.NodeID(nil), dep.Placement.Hosts...)
	instances := append([]nfv.InstanceID(nil), dep.Instances...)
	o.mu.Unlock()

	opticalHosts := o.optoelectronicOf(dep.VC.AL.OPSs)
	electronicHosts := o.pmsOf(o.liveVMs(dep.Spec.Service))
	ctx, err := placement.NewContext(o.topo, o.mgr.Ledger(), opticalHosts, electronicHosts, profiles, o.mode)
	if err != nil {
		return false, false, fmt.Errorf("orch: rehome %d: %w", id, err)
	}
	// Credit the chain's own current reservations back: the comparison
	// is "where would this chain go if placed fresh", and its instances
	// vacate their hosts as part of the move.
	for _, instID := range instances {
		inst := o.mgr.Instance(instID)
		if inst == nil {
			continue
		}
		if free, ok := ctx.Free[inst.Host]; ok {
			ctx.Free[inst.Host] = free.Add(inst.Demand.Scale(float64(inst.Replicas)))
		}
	}
	cand, err := o.policy.Place(ctx)
	if err != nil {
		// No feasible fresh placement (capacity shrank since): the
		// current placement stands; nothing to optimize.
		return false, false, nil
	}
	if placement.BetterBy(curPlace, cand) < margin {
		return false, false, nil
	}

	// Migrate the differing positions, remembering the originals for
	// rollback.
	type moveRec struct {
		idx  int
		from topology.NodeID
	}
	var done []moveRec
	restore := func() error {
		var firstErr error
		for i := len(done) - 1; i >= 0; i-- {
			if mErr := o.mgr.Migrate(instances[done[i].idx], done[i].from); mErr != nil && firstErr == nil {
				firstErr = mErr
			}
		}
		return firstErr
	}
	for idx := range cand.Hosts {
		if cand.Hosts[idx] == curHosts[idx] {
			continue
		}
		if mErr := o.mgr.Migrate(instances[idx], cand.Hosts[idx]); mErr != nil {
			// A host filled up between scoring and moving; put the
			// already-moved instances back and stand pat.
			if rErr := restore(); rErr != nil {
				if rbErr := o.rebuild(context.Background(), dep); rbErr != nil {
					return false, false, fmt.Errorf("orch: rehome %d: %v (restore: %v; %w)", id, mErr, rErr, rbErr)
				}
				return true, true, fmt.Errorf("orch: rehome %d: %v (restore failed: %v; chain rebuilt in place)", id, mErr, rErr)
			}
			return false, false, nil
		}
		done = append(done, moveRec{idx: idx, from: curHosts[idx]})
	}
	if len(done) == 0 {
		return false, false, nil
	}
	if obs := o.rehomeObserver(); obs != nil {
		for _, m := range done {
			obs(o.rackOf(m.from), o.rackOf(cand.Hosts[m.idx]))
		}
	}

	// Re-provision connectivity around the new hosts (path → wdm →
	// rules, make-before-break). Domains come from the migrated
	// instances so the record never disagrees with the manager.
	p := o.pipelineFrom(context.Background(), dep)
	p.place = cand
	for idx := range p.place.Hosts {
		if inst := o.mgr.Instance(instances[idx]); inst != nil {
			p.place.Domains[idx] = inst.Domain
		}
	}
	p.place.Conversions = placement.CountOEO(p.place.Domains, o.mode)
	if err := p.runFrom(stagePath); err != nil {
		if rErr := restore(); rErr != nil {
			if rbErr := o.rebuild(context.Background(), dep); rbErr != nil {
				return false, false, fmt.Errorf("orch: rehome %d: %v (restore: %v; %w)", id, err, rErr, rbErr)
			}
			return true, true, fmt.Errorf("orch: rehome %d: %v (restore failed: %v; chain rebuilt in place)", id, err, rErr)
		}
		o.restoreWavelength(dep)
		return false, false, fmt.Errorf("orch: rehome %d: %w", id, err)
	}
	o.mu.Lock()
	o.unindexLocked(dep)
	p.apply(dep)
	o.indexLocked(dep)
	o.mu.Unlock()
	p.commitWDM()
	return true, false, nil
}

// rackOf resolves a host's rack for the re-home churn observer (-1
// when the node is unknown or rackless, e.g. an optoelectronic OPS).
func (o *Orchestrator) rackOf(host topology.NodeID) int {
	if n := o.topo.Node(host); n != nil {
		return n.Rack
	}
	return -1
}

// DefragLambda consolidates the deployment's wavelength assignment
// during quiet periods: when a lower wavelength is free on every
// optical-segment link of the chain's current path, the flow is moved
// there make-before-break with the same RetuneBegin/Commit machinery
// repairs use (the old channel stays lit until the move commits).
// Returns the channel indices before/after and whether a retune
// happened; a flow already on the lowest common channel, a chain
// without optical segments, or a moment with no spare channel are all
// quiet no-ops.
func (o *Orchestrator) DefragLambda(id DeploymentID) (from, to int, retuned bool, err error) {
	dep, err := o.beginExclusive(id)
	if err != nil {
		return 0, 0, false, fmt.Errorf("orch: defrag: %w", err)
	}
	defer o.endExclusive(id)
	o.topoMu.RLock()
	defer o.topoMu.RUnlock()

	if o.wdm == nil {
		return -1, -1, false, nil
	}
	o.mu.Lock()
	lambda := dep.Lambda
	path := append([]topology.NodeID(nil), dep.Path...)
	key := dep.FlowKey()
	o.mu.Unlock()
	if lambda <= 0 {
		// Unassigned, or already on the lowest channel.
		return lambda, lambda, false, nil
	}
	links, segErr := optical.OpticalSegmentLinks(o.topo, path)
	if segErr != nil || len(links) == 0 {
		return lambda, lambda, false, nil
	}
	candidate, rErr := o.wdm.RetuneBegin(key, links)
	if rErr != nil {
		// No spare channel right now; defrag is strictly opportunistic.
		return lambda, lambda, false, nil
	}
	if candidate >= lambda {
		_ = o.wdm.RetuneAbort(key)
		return lambda, lambda, false, nil
	}
	if cErr := o.wdm.RetuneCommit(key); cErr != nil {
		return lambda, lambda, false, fmt.Errorf("orch: defrag %d: %w", id, cErr)
	}
	o.mu.Lock()
	dep.Lambda = candidate
	o.mu.Unlock()
	return lambda, candidate, true, nil
}
