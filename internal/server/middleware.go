package server

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the status code a handler writes so the
// logging middleware can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers
// (the /v1/watch SSE stream) still see an http.Flusher behind the
// recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging logs one line per request: method, path, status, latency.
func withLogging(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		logger.Printf("%s %s %d %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery converts handler panics into 500s instead of killing
// the connection (and, under some servers, the process).
func withRecovery(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
